//! Post-synthesis audits: physical transport-time slack and chip-area
//! accounting.
//!
//! Two questions the paper leaves implicit, answerable once a solution
//! exists:
//!
//! * **Is the constant `t_c` physically honest?** The schedule assumes
//!   every transport completes in `t_c`; after routing, the real path
//!   lengths are known and a pressure-driven flow model gives the real
//!   travel times ([`audit_transport_times`]).
//! * **How much area does DCSA actually save?** §II claims removing the
//!   dedicated storage unit shrinks the chip; [`area_report`] compares the
//!   synthesized chip's occupied area against a conventional design that
//!   would add a dedicated storage unit sized for the observed peak number
//!   of concurrently cached fluids.

use crate::flow::Solution;
use mfb_model::prelude::*;

/// Physical audit of one transport task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskAudit {
    /// The task.
    pub task: TaskId,
    /// Routed path length, millimetres.
    pub path_mm: f64,
    /// Travel time under the physical model.
    pub physical_time: Duration,
    /// The schedule's transport budget `t_c`.
    pub budget: Duration,
}

impl TaskAudit {
    /// `true` when the physical travel time fits the scheduled budget.
    pub fn fits(&self) -> bool {
        self.physical_time <= self.budget
    }
}

/// Result of [`audit_transport_times`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransportAudit {
    /// One entry per routed transport.
    pub tasks: Vec<TaskAudit>,
}

impl TransportAudit {
    /// Tasks whose physical travel time exceeds the scheduled `t_c`.
    pub fn violations(&self) -> impl Iterator<Item = &TaskAudit> {
        self.tasks.iter().filter(|t| !t.fits())
    }

    /// The largest `physical / budget` ratio (0 when no tasks exist).
    pub fn worst_ratio(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.physical_time.as_secs_f64() / t.budget.as_secs_f64().max(1e-12))
            .fold(0.0, f64::max)
    }

    /// `true` when every transport fits its budget — the constant-`t_c`
    /// abstraction is sound for this chip and pressure.
    pub fn is_sound(&self) -> bool {
        self.tasks.iter().all(TaskAudit::fits)
    }
}

/// Audits every routed transport of `solution` under `model`.
pub fn audit_transport_times(solution: &Solution, model: &dyn TransportModel) -> TransportAudit {
    let pitch = solution.placement.grid().pitch_mm;
    let tasks = solution
        .routing
        .paths
        .iter()
        .map(|p| {
            let path_mm = p.len() as f64 * pitch;
            TaskAudit {
                task: p.task,
                path_mm,
                physical_time: model.transport_time(path_mm),
                budget: solution.schedule.t_c,
            }
        })
        .collect();
    TransportAudit { tasks }
}

/// Area accounting for a synthesized chip versus a conventional
/// dedicated-storage design.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Bounding box of all components and channels, mm².
    pub occupied_mm2: f64,
    /// Largest number of fluids cached in channels at the same instant.
    pub peak_cached_fluids: usize,
    /// Extra area a conventional design would spend on a dedicated storage
    /// unit holding that many fluids (cells plus multiplexer ring), mm².
    pub dedicated_storage_equivalent_mm2: f64,
}

impl AreaReport {
    /// Fraction of the conventional design's area saved by DCSA,
    /// `saved / (occupied + storage)`.
    pub fn savings_fraction(&self) -> f64 {
        let conventional = self.occupied_mm2 + self.dedicated_storage_equivalent_mm2;
        if conventional == 0.0 {
            0.0
        } else {
            self.dedicated_storage_equivalent_mm2 / conventional
        }
    }
}

/// Computes the area report of `solution` (see [`AreaReport`]).
pub fn area_report(solution: &Solution) -> AreaReport {
    let grid = solution.placement.grid();
    let pitch = grid.pitch_mm;

    // Bounding box over component rects and channel cells.
    let mut min_x = u32::MAX;
    let mut min_y = u32::MAX;
    let mut max_x = 0u32;
    let mut max_y = 0u32;
    let mut any = false;
    let mut cover = |cell: CellPos| {
        any = true;
        min_x = min_x.min(cell.x);
        min_y = min_y.min(cell.y);
        max_x = max_x.max(cell.x);
        max_y = max_y.max(cell.y);
    };
    for rect in solution.placement.rects() {
        cover(rect.origin);
        let (x2, y2) = rect.upper_right();
        cover(CellPos::new(x2 - 1, y2 - 1));
    }
    for p in &solution.routing.paths {
        for &c in &p.cells {
            cover(c);
        }
    }
    let occupied_mm2 = if any {
        f64::from(max_x - min_x + 1) * pitch * f64::from(max_y - min_y + 1) * pitch
    } else {
        0.0
    };

    // Peak concurrently cached fluids, over the cache intervals
    // (arrival .. consumption) of all transports.
    let peak_cached_fluids = peak_overlap(
        solution
            .schedule
            .transports()
            .filter(|t| !t.cache_time().is_zero())
            .map(|t| Interval::new(t.arrive, t.consumed_at)),
    );

    // A conventional dedicated storage unit: one 2x1-cell chamber per
    // cached fluid, plus a one-cell multiplexer ring around the block.
    let chambers = peak_cached_fluids.max(1) as f64;
    let block_cells = chambers * 2.0;
    let side = block_cells.sqrt().ceil();
    let storage_cells = (side + 2.0) * (block_cells / side).ceil().max(1.0) + 2.0 * side;
    let dedicated_storage_equivalent_mm2 = if peak_cached_fluids == 0 {
        0.0
    } else {
        storage_cells * pitch * pitch
    };

    AreaReport {
        occupied_mm2,
        peak_cached_fluids,
        dedicated_storage_equivalent_mm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Synthesizer;

    fn solved() -> (SequencingGraph, ComponentSet, Solution) {
        let wash = LogLinearWash::paper_calibrated();
        let d = |s: f64| wash.coefficient_for(Duration::from_secs_f64(s));
        let mut b = SequencingGraph::builder();
        // One mixer forces an eviction: o0's fluid caches in channels.
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d(2.0));
        let _o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d(2.0));
        let o2 = b.operation(OperationKind::Mix, Duration::from_secs(3), d(2.0));
        b.edge(o0, o2).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let sol = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash)
            .unwrap();
        (g, comps, sol)
    }

    #[test]
    fn constant_tc_audit_always_fits() {
        let (_g, _c, sol) = solved();
        let audit = audit_transport_times(&sol, &ConstantTc::paper());
        assert!(audit.is_sound());
        assert_eq!(audit.violations().count(), 0);
        assert!((audit.worst_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn physical_audit_fits_at_typical_pressure() {
        let (_g, _c, sol) = solved();
        let audit = audit_transport_times(&sol, &PressureDriven::typical_pdms());
        assert!(
            audit.is_sound(),
            "short on-chip paths must fit 2 s: {:?}",
            audit.tasks
        );
    }

    #[test]
    fn starved_pressure_violates_budget() {
        let (_g, _c, sol) = solved();
        let weak = PressureDriven {
            pressure_kpa: 0.001,
            ..PressureDriven::typical_pdms()
        };
        let audit = audit_transport_times(&sol, &weak);
        assert!(
            !audit.is_sound(),
            "micro-pressure cannot move plugs in time"
        );
        assert!(audit.worst_ratio() > 1.0);
    }

    #[test]
    fn area_report_counts_cached_fluids() {
        let (_g, _c, sol) = solved();
        let report = area_report(&sol);
        assert!(report.occupied_mm2 > 0.0);
        assert_eq!(report.peak_cached_fluids, 1, "o0's fluid caches once");
        assert!(report.dedicated_storage_equivalent_mm2 > 0.0);
        let f = report.savings_fraction();
        assert!((0.0..1.0).contains(&f));
    }
}
