//! Ours-vs-baseline comparison machinery and the text renditions of the
//! paper's Table I, Fig. 8 and Fig. 9.

use crate::error::SynthesisError;
use crate::flow::Synthesizer;
use crate::metrics::SolutionMetrics;
use mfb_model::prelude::*;
use std::fmt::Write as _;
use std::time::Instant as WallInstant;

/// One benchmark's results under both flows — one row of Table I plus the
/// matching bars of Fig. 8 and Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// Number of operations (Table I column 2).
    pub operations: usize,
    /// Allocated components (Table I column 3).
    pub allocation: Allocation,
    /// Metrics under the paper's flow.
    pub ours: SolutionMetrics,
    /// Metrics under the baseline.
    pub baseline: SolutionMetrics,
    /// Wall-clock synthesis time of the paper's flow.
    pub ours_cpu: std::time::Duration,
    /// Wall-clock synthesis time of the baseline.
    pub baseline_cpu: std::time::Duration,
}

impl ComparisonRow {
    /// Runs both flows on `(graph, allocation)` and collects the row.
    ///
    /// # Errors
    ///
    /// Propagates the first stage error from either flow.
    pub fn compare(
        name: impl Into<String>,
        graph: &SequencingGraph,
        allocation: Allocation,
        library: &ComponentLibrary,
        wash: &dyn WashModel,
    ) -> Result<ComparisonRow, SynthesisError> {
        let components = allocation.instantiate(library);

        let t0 = WallInstant::now();
        let ours_sol = Synthesizer::paper_dcsa().synthesize(graph, &components, wash)?;
        let ours_cpu = t0.elapsed();

        let t1 = WallInstant::now();
        let ba_sol = Synthesizer::paper_baseline().synthesize(graph, &components, wash)?;
        let baseline_cpu = t1.elapsed();

        Ok(ComparisonRow {
            name: name.into(),
            operations: graph.len(),
            allocation,
            ours: SolutionMetrics::of(&ours_sol, &components),
            baseline: SolutionMetrics::of(&ba_sol, &components),
            ours_cpu,
            baseline_cpu,
        })
    }

    /// Relative improvement of ours over the baseline for a
    /// smaller-is-better quantity, in percent (positive = ours better).
    fn imp_smaller(ours: f64, ba: f64) -> f64 {
        if ba == 0.0 {
            0.0
        } else {
            (ba - ours) / ba * 100.0
        }
    }

    /// Execution-time improvement, percent.
    pub fn execution_improvement_pct(&self) -> f64 {
        Self::imp_smaller(
            self.ours.execution_time.as_secs_f64(),
            self.baseline.execution_time.as_secs_f64(),
        )
    }

    /// Resource-utilization improvement, percent (larger is better).
    pub fn utilization_improvement_pct(&self) -> f64 {
        if self.baseline.utilization == 0.0 {
            0.0
        } else {
            (self.ours.utilization - self.baseline.utilization) / self.baseline.utilization * 100.0
        }
    }

    /// Channel-length improvement, percent.
    pub fn channel_improvement_pct(&self) -> f64 {
        Self::imp_smaller(self.ours.channel_length_mm, self.baseline.channel_length_mm)
    }
}

/// Renders rows in the layout of the paper's Table I.
pub fn table1_text(rows: &[ComparisonRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<11} {:>4} {:>11} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7} | {:>9} {:>9} {:>7} | {:>8} {:>8}",
        "Benchmark", "Ops", "Components",
        "Ours(s)", "BA(s)", "Imp(%)",
        "Ours(%)", "BA(%)", "Imp(%)",
        "Ours(mm)", "BA(mm)", "Imp(%)",
        "Ours(s)", "BA(s)"
    );
    let _ = writeln!(s, "{}", "-".repeat(140));
    let (mut se, mut su, mut sc) = (0.0, 0.0, 0.0);
    for r in rows {
        let _ = writeln!(
            s,
            "{:<11} {:>4} {:>11} | {:>8.0} {:>8.0} {:>7.1} | {:>8.1} {:>8.1} {:>7.1} | {:>9.0} {:>9.0} {:>7.1} | {:>8.2} {:>8.2}",
            r.name,
            r.operations,
            r.allocation.to_string(),
            r.ours.execution_time.as_secs_f64(),
            r.baseline.execution_time.as_secs_f64(),
            r.execution_improvement_pct(),
            r.ours.utilization * 100.0,
            r.baseline.utilization * 100.0,
            r.utilization_improvement_pct(),
            r.ours.channel_length_mm,
            r.baseline.channel_length_mm,
            r.channel_improvement_pct(),
            r.ours_cpu.as_secs_f64(),
            r.baseline_cpu.as_secs_f64(),
        );
        se += r.execution_improvement_pct();
        su += r.utilization_improvement_pct();
        sc += r.channel_improvement_pct();
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let _ = writeln!(s, "{}", "-".repeat(140));
        let _ = writeln!(
            s,
            "{:<28} | {:>26.1} | {:>26.1} | {:>28.1} |",
            "Average improvement",
            se / n,
            su / n,
            sc / n
        );
    }
    s
}

/// Renders rows as the Fig. 8 series: total cache time in flow channels.
pub fn fig8_text(rows: &[ComparisonRow]) -> String {
    series_text(rows, "Total cache time in flow channels (s)", |m| {
        m.cache_time.as_secs_f64()
    })
}

/// Renders rows as the Fig. 9 series: total wash time of flow channels.
pub fn fig9_text(rows: &[ComparisonRow]) -> String {
    series_text(rows, "Total wash time of flow channels (s)", |m| {
        m.channel_wash_time.as_secs_f64()
    })
}

fn series_text(rows: &[ComparisonRow], title: &str, f: impl Fn(&SolutionMetrics) -> f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "{:<11} {:>10} {:>10}", "Benchmark", "Ours", "BA");
    let _ = writeln!(s, "{}", "-".repeat(33));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<11} {:>10.1} {:>10.1}",
            r.name,
            f(&r.ours),
            f(&r.baseline)
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_row() -> ComparisonRow {
        let wash = LogLinearWash::paper_calibrated();
        let mut b = SequencingGraph::builder();
        let d = DiffusionCoefficient::PROTEIN;
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d);
        b.edge(m0, m1).unwrap();
        let g = b.build().unwrap();
        ComparisonRow::compare(
            "tiny",
            &g,
            Allocation::new(2, 0, 0, 0),
            &ComponentLibrary::default(),
            &wash,
        )
        .unwrap()
    }

    #[test]
    fn comparison_row_collects_both_flows() {
        let r = tiny_row();
        assert_eq!(r.operations, 2);
        // Ours chains in place (9 s); BA spreads and pays t_c (11 s).
        assert_eq!(r.ours.execution_time, Duration::from_secs(9));
        assert_eq!(r.baseline.execution_time, Duration::from_secs(11));
        assert!(r.execution_improvement_pct() > 0.0);
    }

    #[test]
    fn tables_render() {
        let rows = vec![tiny_row()];
        let t = table1_text(&rows);
        assert!(t.contains("tiny") && t.contains("Average improvement"));
        let f8 = fig8_text(&rows);
        assert!(f8.contains("cache time"));
        let f9 = fig9_text(&rows);
        assert!(f9.contains("wash time"));
    }

    #[test]
    fn improvements_handle_zero_baseline() {
        let mut r = tiny_row();
        r.baseline.channel_length_mm = 0.0;
        assert_eq!(r.channel_improvement_pct(), 0.0);
        r.baseline.utilization = 0.0;
        assert_eq!(r.utilization_improvement_pct(), 0.0);
    }
}
