//! Whole-solution metrics: the four Table-I columns plus the Fig. 8 and
//! Fig. 9 quantities, computed on **realized** times (so routing
//! postponements in the baseline properly count against it).

use crate::flow::Solution;
use mfb_model::prelude::*;
use serde::{Deserialize, Serialize};

/// Every number the paper reports about one synthesis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionMetrics {
    /// Assay execution (completion) time, realized — Table I column group 1.
    pub execution_time: Duration,
    /// On-chip resource utilization `U_r` (Eq. (1)) over realized times —
    /// Table I column group 2.
    pub utilization: f64,
    /// Total flow-channel length in millimetres (distinct channel cells ×
    /// pitch) — Table I column group 3.
    pub channel_length_mm: f64,
    /// Total fluid cache time in flow channels, realized — Fig. 8.
    pub cache_time: Duration,
    /// Total wash time of flow channels — Fig. 9.
    pub channel_wash_time: Duration,
    /// Total component wash time booked by the scheduler.
    pub component_wash_time: Duration,
    /// Routing-induced delay summed over operations (zero for the paper's
    /// flow).
    pub total_delay: Duration,
    /// Dependencies satisfied in place (Case-I wins).
    pub in_place: usize,
    /// Number of transport tasks routed.
    pub transports: usize,
}

impl SolutionMetrics {
    /// Computes all metrics of `solution` for the assay it was built from.
    pub fn of(solution: &Solution, components: &ComponentSet) -> Self {
        let schedule = &solution.schedule;
        let routing = &solution.routing;
        let realized = &routing.realized;

        // Eq. (1) on realized times.
        let mut busy = vec![Duration::ZERO; components.len()];
        let mut first: Vec<Option<Instant>> = vec![None; components.len()];
        let mut last: Vec<Option<Instant>> = vec![None; components.len()];
        for s in schedule.ops() {
            let i = s.component.index();
            let (rs, re) = (realized.start[s.op.index()], realized.end[s.op.index()]);
            busy[i] += re - rs;
            first[i] = Some(first[i].map_or(rs, |f| f.min(rs)));
            last[i] = Some(last[i].map_or(re, |l| l.max(re)));
        }
        let utilization = if components.is_empty() {
            0.0
        } else {
            components
                .ids()
                .map(|c| {
                    let i = c.index();
                    match (first[i], last[i]) {
                        (Some(f), Some(l)) if l > f => {
                            busy[i].as_secs_f64() / (l - f).as_secs_f64()
                        }
                        _ => 0.0,
                    }
                })
                .sum::<f64>()
                / components.len() as f64
        };

        let cache_time = routing.total_realized_cache_time(schedule.t_c);

        SolutionMetrics {
            execution_time: realized.completion() - Instant::ZERO,
            utilization,
            channel_length_mm: routing.total_channel_length_mm(),
            cache_time,
            channel_wash_time: routing.total_channel_wash_time(),
            component_wash_time: schedule.total_component_wash_time(),
            total_delay: routing.total_delay(schedule),
            in_place: schedule.in_place_count(),
            transports: routing.paths.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Synthesizer;

    #[test]
    fn metrics_of_small_solution_are_sane() {
        let wash = LogLinearWash::paper_calibrated();
        let mut b = SequencingGraph::builder();
        let d = DiffusionCoefficient::PROTEIN;
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d);
        b.edge(m0, m1).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash)
            .unwrap();
        let m = SolutionMetrics::of(&s, &comps);

        // Case I keeps the chain on one mixer: 9 s, no transports.
        assert_eq!(m.execution_time, Duration::from_secs(9));
        assert_eq!(m.transports, 0);
        assert_eq!(m.in_place, 1);
        assert_eq!(m.total_delay, Duration::ZERO);
        assert_eq!(m.channel_length_mm, 0.0);
        // One fully-busy mixer, one idle: U_r = 0.5.
        assert!((m.utilization - 0.5).abs() < 1e-12);
    }
}
