//! The content-addressed stage-result cache.
//!
//! Every stage of the pipeline — scheduling, netlist construction,
//! placement, routing, channel-length optimization — is a pure function of
//! its inputs. The [`StageCache`] exploits that: each stage result is
//! stored under a [`ContentHash`] key derived from *everything* the stage
//! can observe, so a request whose inputs are unchanged returns the stored
//! result instead of recomputing. Because the stages are pure, a cached
//! result is **byte-identical** to what recomputation would produce — the
//! golden tests in `tests/cache_equiv.rs` pin this.
//!
//! # Keying (invalidation falls out of it)
//!
//! There is no explicit invalidation: a key embeds the content hashes of
//! its stage's inputs, so changing any input simply addresses a different
//! slot. The keys are:
//!
//! * **schedule** ← assay graph, component set, wash-model fingerprint,
//!   `t_c`, binding rule, defect map;
//! * **netlist** ← the *produced* schedule's content hash, graph, wash
//!   fingerprint, `β`, `γ`;
//! * **placement** ← netlist key, component set, grid spec, placement
//!   strategy with all its parameters (including the per-attempt SA seed),
//!   defect map;
//! * **routing** ← the produced schedule and placement content hashes,
//!   graph, wash fingerprint, router configuration, routing strategy,
//!   defect map;
//! * **optimized routing** ← the routing key (which already pins the
//!   routed solution and every optimizer input).
//!
//! Failed stages are cached too — every stage error is `Clone` and a
//! deterministic property of the same inputs, so replaying a failure from
//! the cache is byte-identical to recomputing it. Routing errors are
//! stored without their attempt number and stamped with the caller's
//! attempt counter on the way out, preserving exact error strings in
//! recovery traces.
//!
//! # Concurrency & determinism
//!
//! The cache is shared across threads (`&StageCache` is `Send + Sync`).
//! A computation in flight is marked in the map; other requesters of the
//! same key block on a condvar instead of duplicating work, and a panic
//! inside a compute closure releases the marker so waiters retry rather
//! than hang. Since every slot holds the output of a pure function,
//! thread interleaving can only affect *who* computes a value, never the
//! value itself — synthesis results stay byte-identical for any
//! `MFB_THREADS`. Aggregate hit/miss counters are deterministic as well:
//! per stage, misses = distinct keys computed, hits = requests − misses.
//!
//! # Schedule validation (once per schedule hash)
//!
//! The cached schedule stage runs the independent validator
//! (`mfb_sched::validate`) once per **distinct schedule content hash** per
//! cache lifetime, instead of on every recovery-ladder rung that reuses
//! the same bound schedule. A violation means the scheduler broke its own
//! contract, so it surfaces as a panic — contained as
//! [`SynthesisError::StagePanic`](crate::error::SynthesisError::StagePanic)
//! under the resilient driver's guards.

use crate::config::{PlacementStrategy, RoutingStrategy, SynthesisConfig};
use mfb_model::hash::{content_hash, wash_fingerprint, ContentHash, StableHasher};
use mfb_model::prelude::*;
use mfb_place::prelude::{NetList, PlaceError, Placement, SpacingParams};
use mfb_route::prelude::{RouteError, Routing};
use mfb_sched::prelude::{validate, SchedError, Schedule, SchedulerConfig};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Aggregate hit/miss accounting for one [`StageCache`].
///
/// All counters are totals since the cache was created. They are
/// deterministic for a given workload: per stage, `*_misses` is the number
/// of distinct keys computed and `*_hits` is requests minus misses,
/// independent of thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Schedule-stage requests served from the cache.
    pub schedule_hits: u64,
    /// Schedule-stage requests that had to compute.
    pub schedule_misses: u64,
    /// Netlist-stage requests served from the cache.
    pub netlist_hits: u64,
    /// Netlist-stage requests that had to compute.
    pub netlist_misses: u64,
    /// Placement-stage requests served from the cache.
    pub placement_hits: u64,
    /// Placement-stage requests that had to compute.
    pub placement_misses: u64,
    /// Routing-stage requests served from the cache.
    pub routing_hits: u64,
    /// Routing-stage requests that had to compute.
    pub routing_misses: u64,
    /// Channel-optimization requests served from the cache.
    pub optimize_hits: u64,
    /// Channel-optimization requests that had to compute.
    pub optimize_misses: u64,
    /// Full schedule validations run (once per distinct schedule hash).
    pub schedule_validations: u64,
}

impl CacheStats {
    /// Total hits across every stage.
    pub fn hits(&self) -> u64 {
        self.schedule_hits
            + self.netlist_hits
            + self.placement_hits
            + self.routing_hits
            + self.optimize_hits
    }

    /// Total misses across every stage.
    pub fn misses(&self) -> u64 {
        self.schedule_misses
            + self.netlist_misses
            + self.placement_misses
            + self.routing_misses
            + self.optimize_misses
    }
}

/// Counter-wise saturating difference, for attributing activity to a
/// window: snapshot before, subtract after. Counters are monotone, so
/// saturation only matters if snapshots are swapped.
impl std::ops::Sub for CacheStats {
    type Output = CacheStats;

    fn sub(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            schedule_hits: self.schedule_hits.saturating_sub(rhs.schedule_hits),
            schedule_misses: self.schedule_misses.saturating_sub(rhs.schedule_misses),
            netlist_hits: self.netlist_hits.saturating_sub(rhs.netlist_hits),
            netlist_misses: self.netlist_misses.saturating_sub(rhs.netlist_misses),
            placement_hits: self.placement_hits.saturating_sub(rhs.placement_hits),
            placement_misses: self.placement_misses.saturating_sub(rhs.placement_misses),
            routing_hits: self.routing_hits.saturating_sub(rhs.routing_hits),
            routing_misses: self.routing_misses.saturating_sub(rhs.routing_misses),
            optimize_hits: self.optimize_hits.saturating_sub(rhs.optimize_hits),
            optimize_misses: self.optimize_misses.saturating_sub(rhs.optimize_misses),
            schedule_validations: self
                .schedule_validations
                .saturating_sub(rhs.schedule_validations),
        }
    }
}

/// One persistable cache entry: the flattened on-disk form of a single
/// finished, successful slot. Exactly one payload field is `Some`,
/// selected by [`stage`](SnapshotEntry::stage) (`"routing"` and
/// `"optimize"` share the `routing` field). Produced by
/// [`StageCache::export_entries`], consumed by
/// [`StageCache::import_entry`]; errors and in-flight slots are never
/// part of a snapshot.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SnapshotEntry {
    /// Which stage map the entry belongs to: `"schedule"`, `"netlist"`,
    /// `"placement"`, `"routing"`, or `"optimize"`.
    pub stage: String,
    /// The content-hash key of the slot, as produced by the stage's key
    /// builder.
    pub key: u64,
    /// The stage's *output* content hash for stages that record one
    /// (schedule, placement); zero otherwise.
    pub output_hash: u64,
    /// Payload of a `"schedule"` entry.
    pub schedule: Option<Schedule>,
    /// Payload of a `"netlist"` entry.
    pub netlist: Option<NetList>,
    /// Payload of a `"placement"` entry.
    pub placement: Option<Placement>,
    /// Payload of a `"routing"` or `"optimize"` entry.
    pub routing: Option<Routing>,
}

impl SnapshotEntry {
    fn new(stage: &str, key: u64, output_hash: u64) -> Self {
        SnapshotEntry {
            stage: stage.to_owned(),
            key,
            output_hash,
            schedule: None,
            netlist: None,
            placement: None,
            routing: None,
        }
    }
}

/// A slot is either a finished result or a computation in flight whose
/// requesters should wait rather than duplicate the work.
enum Slot<T> {
    InFlight,
    Ready(T),
}

/// A schedule entry: the bound schedule and its output content hash, or
/// the (deterministic) scheduling error.
type SchedEntry = Result<(Arc<Schedule>, ContentHash), SchedError>;
/// A placement entry: the placement and its output content hash, or the
/// placement error.
type PlaceEntry = Result<(Arc<Placement>, ContentHash), PlaceError>;
/// A routing entry. Routing errors are stored **without** an attempt
/// number (the caller stamps its own on the way out).
type RouteEntry = Result<Arc<Routing>, RouteError>;

#[derive(Default)]
struct CacheState {
    schedules: HashMap<u64, Slot<SchedEntry>>,
    netlists: HashMap<u64, Slot<Arc<NetList>>>,
    places: HashMap<u64, Slot<PlaceEntry>>,
    routes: HashMap<u64, Slot<RouteEntry>>,
    optimized: HashMap<u64, Slot<Arc<Routing>>>,
    /// Output hashes of schedules that have passed full validation.
    validated: HashSet<u64>,
    stats: CacheStats,
}

/// The shared content-addressed stage cache. See the [module docs](self).
///
/// Create one per batch (or reuse across calls for a warm cache) and pass
/// it to [`Synthesizer::synthesize_cached`](crate::flow::Synthesizer::synthesize_cached)
/// or the resilient driver. Entries live until the cache is dropped.
pub struct StageCache {
    state: Mutex<CacheState>,
    ready: Condvar,
}

impl std::fmt::Debug for StageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("StageCache").field("stats", &stats).finish()
    }
}

impl Default for StageCache {
    fn default() -> Self {
        StageCache::new()
    }
}

impl StageCache {
    /// An empty cache.
    pub fn new() -> Self {
        StageCache {
            state: Mutex::new(CacheState::default()),
            ready: Condvar::new(),
        }
    }

    /// A snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// True when a **finished** schedule result is stored under `key`
    /// (see [`Synthesizer::schedule_cache_key`](crate::flow::Synthesizer::schedule_cache_key)).
    pub fn contains_schedule(&self, key: ContentHash) -> bool {
        matches!(
            self.lock().schedules.get(&key.as_u64()),
            Some(Slot::Ready(_))
        )
    }

    /// The lock, recovered from poisoning: the state is only ever mutated
    /// by small panic-free map operations, so a poisoned mutex (a panic in
    /// *another* critical section user) leaves it consistent.
    fn lock(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the cached value for `key`, computing (and storing) it with
    /// `compute` on a miss. Concurrent requesters of an in-flight key
    /// block until the computer finishes; if it panics instead, the
    /// in-flight marker is released and a waiter takes over the
    /// computation.
    ///
    /// A value `cacheable` rejects is returned but **not** stored, and the
    /// in-flight marker is released exactly as after a panic: waiters wake
    /// and recompute instead of observing it. Budget-interrupted stage
    /// results go through this path — they reflect one request's deadline,
    /// not the inputs, so caching them would poison every later request
    /// for the same key.
    fn get_or_compute<T: Clone>(
        &self,
        stage: &'static str,
        map: fn(&mut CacheState) -> &mut HashMap<u64, Slot<T>>,
        count: fn(&mut CacheStats, bool),
        key: ContentHash,
        cacheable: impl FnOnce(&T) -> bool,
        compute: impl FnOnce() -> T,
    ) -> T {
        let k = key.as_u64();
        // Dedup attribution: true when this requester blocked on another
        // thread's in-flight computation of the same key.
        let mut waited = false;
        {
            let mut st = self.lock();
            loop {
                match map(&mut st).get(&k) {
                    Some(Slot::Ready(v)) => {
                        let v = v.clone();
                        count(&mut st.stats, true);
                        drop(st);
                        emit_cache_event(stage, "hit", waited);
                        return v;
                    }
                    Some(Slot::InFlight) => {
                        waited = true;
                        st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                    None => {
                        map(&mut st).insert(k, Slot::InFlight);
                        count(&mut st.stats, false);
                        break;
                    }
                }
            }
        }
        emit_cache_event(stage, "miss", waited);

        // The in-flight marker is ours now; it must not survive a panic in
        // `compute`, or every waiter on this key would block forever.
        struct Reservation<'a, T> {
            cache: &'a StageCache,
            map: fn(&mut CacheState) -> &mut HashMap<u64, Slot<T>>,
            k: u64,
            armed: bool,
        }
        impl<T> Drop for Reservation<'_, T> {
            fn drop(&mut self) {
                if self.armed {
                    let mut st = self.cache.lock();
                    (self.map)(&mut st).remove(&self.k);
                    drop(st);
                    self.cache.ready.notify_all();
                }
            }
        }
        let mut reservation = Reservation {
            cache: self,
            map,
            k,
            armed: true,
        };

        let v = compute();

        if cacheable(&v) {
            let mut st = self.lock();
            map(&mut st).insert(k, Slot::Ready(v.clone()));
            reservation.armed = false;
            drop(st);
            self.ready.notify_all();
        } else {
            emit_cache_event(stage, "uncacheable", false);
        }
        // An uncacheable value leaves the reservation armed; its drop (here)
        // removes the in-flight marker and wakes waiters to recompute.
        v
    }

    /// Number of finished, successful entries currently stored — the
    /// number [`export_entries`](StageCache::export_entries) would return.
    pub fn ready_entries(&self) -> usize {
        fn ready<T>(m: &HashMap<u64, Slot<T>>, ok: impl Fn(&T) -> bool) -> usize {
            m.values()
                .filter(|s| matches!(s, Slot::Ready(v) if ok(v)))
                .count()
        }
        let st = self.lock();
        ready(&st.schedules, |e| e.is_ok())
            + ready(&st.netlists, |_| true)
            + ready(&st.places, |e| e.is_ok())
            + ready(&st.routes, |e| e.is_ok())
            + ready(&st.optimized, |_| true)
    }

    /// Every finished, **successful** entry as a persistable snapshot,
    /// sorted by `(stage, key)` so exports are deterministic. Errors are
    /// not exported even though they are cached in memory: a persisted
    /// error could outlive the configuration that produced it, and
    /// recomputing one is cheap (it is the success path that is slow).
    pub fn export_entries(&self) -> Vec<SnapshotEntry> {
        let mut out = Vec::new();
        {
            let st = self.lock();
            for (k, slot) in &st.schedules {
                if let Slot::Ready(Ok((s, h))) = slot {
                    let mut e = SnapshotEntry::new("schedule", *k, h.as_u64());
                    e.schedule = Some((**s).clone());
                    out.push(e);
                }
            }
            for (k, slot) in &st.netlists {
                if let Slot::Ready(n) = slot {
                    let mut e = SnapshotEntry::new("netlist", *k, 0);
                    e.netlist = Some((**n).clone());
                    out.push(e);
                }
            }
            for (k, slot) in &st.places {
                if let Slot::Ready(Ok((p, h))) = slot {
                    let mut e = SnapshotEntry::new("placement", *k, h.as_u64());
                    e.placement = Some((**p).clone());
                    out.push(e);
                }
            }
            for (k, slot) in &st.routes {
                if let Slot::Ready(Ok(r)) = slot {
                    let mut e = SnapshotEntry::new("routing", *k, 0);
                    e.routing = Some((**r).clone());
                    out.push(e);
                }
            }
            for (k, slot) in &st.optimized {
                if let Slot::Ready(r) = slot {
                    let mut e = SnapshotEntry::new("optimize", *k, 0);
                    e.routing = Some((**r).clone());
                    out.push(e);
                }
            }
        }
        out.sort_by(|a, b| (a.stage.as_str(), a.key).cmp(&(b.stage.as_str(), b.key)));
        out
    }

    /// Installs one snapshot entry into its stage map, if that slot is
    /// vacant. Returns `false` — changing nothing — when the entry names
    /// an unknown stage, is missing its payload, or the slot is already
    /// occupied (ready *or* in flight). A malformed entry is therefore a
    /// recompute, never an error: snapshot corruption cannot poison the
    /// cache. Imported schedules are **not** marked validated; the
    /// independent validator re-runs on first use, so even a plausible
    /// but wrong persisted schedule is caught.
    pub fn import_entry(&self, entry: &SnapshotEntry) -> bool {
        let mut st = self.lock();
        let k = entry.key;
        match entry.stage.as_str() {
            "schedule" => {
                let Some(s) = &entry.schedule else {
                    return false;
                };
                if st.schedules.contains_key(&k) {
                    return false;
                }
                let payload = (
                    Arc::new(s.clone()),
                    ContentHash::from_u64(entry.output_hash),
                );
                st.schedules.insert(k, Slot::Ready(Ok(payload)));
            }
            "netlist" => {
                let Some(n) = &entry.netlist else {
                    return false;
                };
                if st.netlists.contains_key(&k) {
                    return false;
                }
                st.netlists.insert(k, Slot::Ready(Arc::new(n.clone())));
            }
            "placement" => {
                let Some(p) = &entry.placement else {
                    return false;
                };
                if st.places.contains_key(&k) {
                    return false;
                }
                let payload = (
                    Arc::new(p.clone()),
                    ContentHash::from_u64(entry.output_hash),
                );
                st.places.insert(k, Slot::Ready(Ok(payload)));
            }
            "routing" => {
                let Some(r) = &entry.routing else {
                    return false;
                };
                if st.routes.contains_key(&k) {
                    return false;
                }
                st.routes.insert(k, Slot::Ready(Ok(Arc::new(r.clone()))));
            }
            "optimize" => {
                let Some(r) = &entry.routing else {
                    return false;
                };
                if st.optimized.contains_key(&k) {
                    return false;
                }
                st.optimized.insert(k, Slot::Ready(Arc::new(r.clone())));
            }
            _ => return false,
        }
        true
    }

    /// Runs `run` if no schedule with output hash `schedule_h` has been
    /// validated through this cache yet. The claim is atomic, so exactly
    /// one requester validates each distinct schedule.
    fn validate_once(&self, schedule_h: ContentHash, run: impl FnOnce()) {
        {
            let mut st = self.lock();
            if !st.validated.insert(schedule_h.as_u64()) {
                return;
            }
            st.stats.schedule_validations += 1;
        }
        mfb_obs::obs_instant!("cache.schedule.validate");
        run();
    }
}

/// Emits one `cache.<stage>.<hit|miss>` instant; `dedup_wait` marks
/// requests that blocked on another thread computing the same key.
fn emit_cache_event(stage: &'static str, outcome: &str, waited: bool) {
    if mfb_obs::enabled() {
        mfb_obs::instant(
            &format!("cache.{stage}.{outcome}"),
            vec![mfb_obs::Field::new("dedup_wait", waited)],
        );
    }
}

fn count_schedule(s: &mut CacheStats, hit: bool) {
    if hit {
        s.schedule_hits += 1;
    } else {
        s.schedule_misses += 1;
    }
}
fn count_netlist(s: &mut CacheStats, hit: bool) {
    if hit {
        s.netlist_hits += 1;
    } else {
        s.netlist_misses += 1;
    }
}
fn count_place(s: &mut CacheStats, hit: bool) {
    if hit {
        s.placement_hits += 1;
    } else {
        s.placement_misses += 1;
    }
}
fn count_route(s: &mut CacheStats, hit: bool) {
    if hit {
        s.routing_hits += 1;
    } else {
        s.routing_misses += 1;
    }
}
fn count_optimize(s: &mut CacheStats, hit: bool) {
    if hit {
        s.optimize_hits += 1;
    } else {
        s.optimize_misses += 1;
    }
}

/// Content hashes of the four pipeline-wide inputs every stage key builds
/// on. Computing them costs one JSON serialization each, so the uncached
/// path never constructs one.
pub(crate) struct BaseKeys {
    graph_h: ContentHash,
    comps_h: ContentHash,
    wash_h: ContentHash,
    defects_h: ContentHash,
}

impl BaseKeys {
    pub(crate) fn new(
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
    ) -> Self {
        BaseKeys {
            graph_h: content_hash(graph),
            comps_h: content_hash(components),
            wash_h: wash_fingerprint(wash, graph),
            defects_h: content_hash(defects),
        }
    }

    pub(crate) fn schedule_key(&self, sched_cfg: &SchedulerConfig) -> ContentHash {
        let mut h = StableHasher::new();
        h.write_str("sched-v1");
        h.write_hash(self.graph_h);
        h.write_hash(self.comps_h);
        h.write_hash(self.wash_h);
        h.write_hash(self.defects_h);
        h.write_u64(sched_cfg.t_c.as_ticks());
        h.write_hash(content_hash(&sched_cfg.rule));
        h.finish()
    }

    fn netlist_key(&self, schedule_h: ContentHash, beta: f64, gamma: f64) -> ContentHash {
        let mut h = StableHasher::new();
        h.write_str("nets-v1");
        h.write_hash(schedule_h);
        h.write_hash(self.graph_h);
        h.write_hash(self.wash_h);
        h.write_f64(beta);
        h.write_f64(gamma);
        h.finish()
    }

    fn place_key(
        &self,
        netlist_key: ContentHash,
        grid: GridSpec,
        cfg: &SynthesisConfig,
        seed: u64,
    ) -> ContentHash {
        let mut h = StableHasher::new();
        h.write_str("place-v1");
        h.write_hash(netlist_key);
        h.write_hash(self.comps_h);
        h.write_hash(self.defects_h);
        h.write_u32(grid.width);
        h.write_u32(grid.height);
        h.write_f64(grid.pitch_mm);
        match cfg.placement {
            PlacementStrategy::SimulatedAnnealing => {
                h.write_str("sa");
                h.write_f64(cfg.sa.t0);
                h.write_f64(cfg.sa.t_min);
                h.write_f64(cfg.sa.alpha);
                h.write_u32(cfg.sa.i_max);
                h.write_u64(seed);
                write_spacing(&mut h, cfg.sa.spacing);
                // Tempering inputs: a different chain count or ladder is a
                // different placement, so it must be a different key.
                h.write_u32(cfg.sa.chains);
                h.write_f64(cfg.sa.ladder);
            }
            PlacementStrategy::Constructive => {
                h.write_str("constructive");
                write_spacing(&mut h, SpacingParams::default_routing());
            }
            PlacementStrategy::ForceDirected => h.write_str("force-directed"),
        }
        h.finish()
    }

    fn route_key(
        &self,
        schedule_h: ContentHash,
        place_h: ContentHash,
        cfg: &SynthesisConfig,
    ) -> ContentHash {
        let mut h = StableHasher::new();
        h.write_str("route-v1");
        h.write_hash(schedule_h);
        h.write_hash(place_h);
        h.write_hash(self.graph_h);
        h.write_hash(self.wash_h);
        h.write_hash(self.defects_h);
        h.write_str(match cfg.routing {
            RoutingStrategy::ConflictAware => "conflict-aware",
            RoutingStrategy::ConstructionByCorrection => "corrected",
            RoutingStrategy::Negotiated => "negotiated",
        });
        h.write_u64(cfg.router.w_e.as_ticks());
        h.write_bool(cfg.router.wash_aware_weights);
        h.write_u32(cfg.router.plug_cells);
        if cfg.routing == RoutingStrategy::Negotiated {
            // Negotiation inputs: a different penalty schedule can converge
            // on a different routing, so it must be a different key.
            h.write_u32(cfg.router.negotiation.max_iters);
            h.write_u64(cfg.router.negotiation.present_step_ticks);
            h.write_u64(cfg.router.negotiation.history_step_ticks);
        }
        h.finish()
    }

    fn optimize_key(&self, route_key: ContentHash) -> ContentHash {
        let mut h = StableHasher::new();
        h.write_str("opt-v1");
        h.write_hash(route_key);
        h.finish()
    }
}

fn write_spacing(h: &mut StableHasher, spacing: SpacingParams) {
    h.write_u32(spacing.min_gap);
    h.write_f64(spacing.weight);
}

/// Per-run stage adapter: either passes compute closures straight through
/// (uncached — zero hashing overhead, byte-for-byte the pre-cache flow) or
/// wraps them in [`StageCache`] lookups keyed off the precomputed
/// [`BaseKeys`].
pub(crate) struct StageCtx<'a> {
    cache: Option<(&'a StageCache, BaseKeys)>,
}

impl<'a> StageCtx<'a> {
    pub(crate) fn new(
        cache: Option<&'a StageCache>,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
    ) -> Self {
        StageCtx {
            cache: cache.map(|c| (c, BaseKeys::new(graph, components, wash, defects))),
        }
    }

    /// The scheduling stage. Returns the schedule and its output content
    /// hash (zero when uncached — nothing downstream reads it then).
    /// Cached schedules are validated once per distinct output hash.
    pub(crate) fn schedule(
        &self,
        sched_cfg: &SchedulerConfig,
        graph: &SequencingGraph,
        components: &ComponentSet,
        compute: impl FnOnce() -> Result<Schedule, SchedError>,
    ) -> Result<(Schedule, ContentHash), SchedError> {
        let Some((cache, keys)) = &self.cache else {
            return compute().map(|s| (s, ContentHash::from_u64(0)));
        };
        let entry = cache.get_or_compute(
            "schedule",
            |s| &mut s.schedules,
            count_schedule,
            keys.schedule_key(sched_cfg),
            |_| true,
            || {
                compute().map(|schedule| {
                    let h = content_hash(&schedule);
                    (Arc::new(schedule), h)
                })
            },
        );
        let (schedule, schedule_h) = entry?;
        cache.validate_once(schedule_h, || {
            let violations = validate(&schedule, graph, components);
            assert!(
                violations.is_empty(),
                "bound schedule failed post-binding validation: {violations:?}"
            );
        });
        Ok(((*schedule).clone(), schedule_h))
    }

    /// The netlist stage. Returns the netlist and the netlist *key* (not
    /// an output hash — the key is already fully content-addressed, so
    /// downstream keys build on it without serializing the netlist).
    pub(crate) fn netlist(
        &self,
        schedule_h: ContentHash,
        beta: f64,
        gamma: f64,
        compute: impl FnOnce() -> NetList,
    ) -> (NetList, ContentHash) {
        let Some((cache, keys)) = &self.cache else {
            return (compute(), ContentHash::from_u64(0));
        };
        let key = keys.netlist_key(schedule_h, beta, gamma);
        let netlist = cache.get_or_compute(
            "netlist",
            |s| &mut s.netlists,
            count_netlist,
            key,
            |_| true,
            || Arc::new(compute()),
        );
        ((*netlist).clone(), key)
    }

    /// The placement stage for one attempt. `seed` must be the effective
    /// SA seed of this attempt (ignored by seedless strategies).
    pub(crate) fn place(
        &self,
        netlist_key: ContentHash,
        grid: GridSpec,
        cfg: &SynthesisConfig,
        seed: u64,
        compute: impl FnOnce() -> Result<Placement, PlaceError>,
    ) -> Result<(Placement, ContentHash), PlaceError> {
        let Some((cache, keys)) = &self.cache else {
            return compute().map(|p| (p, ContentHash::from_u64(0)));
        };
        let entry = cache.get_or_compute(
            "placement",
            |s| &mut s.places,
            count_place,
            keys.place_key(netlist_key, grid, cfg, seed),
            // A budget interrupt is a property of the request, not the key.
            |e| !matches!(e, Err(PlaceError::Interrupted(_))),
            || {
                compute().map(|placement| {
                    let h = content_hash(&placement);
                    (Arc::new(placement), h)
                })
            },
        );
        entry.map(|(placement, h)| ((*placement).clone(), h))
    }

    /// The routing stage. Returns the routing and the routing *key* (for
    /// [`optimize`](StageCtx::optimize)); errors come back without an
    /// attempt number — the caller stamps its own.
    pub(crate) fn route(
        &self,
        schedule_h: ContentHash,
        place_h: ContentHash,
        cfg: &SynthesisConfig,
        compute: impl FnOnce() -> Result<Routing, RouteError>,
    ) -> (Result<Routing, RouteError>, ContentHash) {
        let Some((cache, keys)) = &self.cache else {
            return (compute(), ContentHash::from_u64(0));
        };
        let key = keys.route_key(schedule_h, place_h, cfg);
        let entry = cache.get_or_compute(
            "routing",
            |s| &mut s.routes,
            count_route,
            key,
            // A budget interrupt is a property of the request, not the key.
            |e| !matches!(e, Err(RouteError::Interrupted(_))),
            || compute().map(Arc::new),
        );
        (entry.map(|routing| (*routing).clone()), key)
    }

    /// The channel-length optimization stage, keyed off the routing key.
    pub(crate) fn optimize(
        &self,
        route_key: ContentHash,
        compute: impl FnOnce() -> Routing,
    ) -> Routing {
        let Some((cache, keys)) = &self.cache else {
            return compute();
        };
        let routing = cache.get_or_compute(
            "optimize",
            |s| &mut s.optimized,
            count_optimize,
            keys.optimize_key(route_key),
            |_| true,
            || Arc::new(compute()),
        );
        (*routing).clone()
    }
}

impl std::fmt::Debug for StageCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageCtx")
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn schedules(s: &mut CacheState) -> &mut HashMap<u64, Slot<SchedEntry>> {
        &mut s.schedules
    }

    #[test]
    fn second_request_is_a_hit_and_skips_compute() {
        let cache = StageCache::new();
        let calls = AtomicU32::new(0);
        let key = ContentHash::from_u64(42);
        let compute = || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(SchedError::NoComponentForKind {
                op: OpId::new(0),
                kind: ComponentKind::Mixer,
            })
        };
        let a = cache.get_or_compute(
            "schedule",
            schedules,
            count_schedule,
            key,
            |_| true,
            compute,
        );
        let b = cache.get_or_compute(
            "schedule",
            schedules,
            count_schedule,
            key,
            |_| true,
            || unreachable!("hit must not recompute"),
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(a.clone().unwrap_err(), b.unwrap_err());
        let stats = cache.stats();
        assert_eq!((stats.schedule_misses, stats.schedule_hits), (1, 1));
    }

    #[test]
    fn panicking_compute_releases_the_slot() {
        let cache = StageCache::new();
        let key = ContentHash::from_u64(7);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_compute(
                "schedule",
                schedules,
                count_schedule,
                key,
                |_| true,
                || panic!("stage bug"),
            );
        }));
        assert!(boom.is_err());
        // The key must be computable again, not deadlocked in flight.
        let v = cache.get_or_compute(
            "schedule",
            schedules,
            count_schedule,
            key,
            |_| true,
            || {
                Err(SchedError::NoComponentForKind {
                    op: OpId::new(1),
                    kind: ComponentKind::Heater,
                })
            },
        );
        assert!(v.is_err());
        assert_eq!(cache.stats().schedule_misses, 2);
    }

    #[test]
    fn uncacheable_value_is_returned_but_not_stored() {
        let cache = StageCache::new();
        let calls = AtomicU32::new(0);
        let key = ContentHash::from_u64(9);
        let err = || {
            Err(SchedError::NoComponentForKind {
                op: OpId::new(2),
                kind: ComponentKind::Mixer,
            })
        };
        let a = cache.get_or_compute(
            "schedule",
            schedules,
            count_schedule,
            key,
            |_| false,
            || {
                calls.fetch_add(1, Ordering::SeqCst);
                err()
            },
        );
        assert!(a.is_err());
        // Not stored: the next request recomputes (a second miss).
        let b = cache.get_or_compute(
            "schedule",
            schedules,
            count_schedule,
            key,
            |_| true,
            || {
                calls.fetch_add(1, Ordering::SeqCst);
                err()
            },
        );
        assert!(b.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let stats = cache.stats();
        assert_eq!((stats.schedule_misses, stats.schedule_hits), (2, 0));
    }

    #[test]
    fn validate_once_runs_once_per_hash() {
        let cache = StageCache::new();
        let runs = AtomicU32::new(0);
        for _ in 0..3 {
            cache.validate_once(ContentHash::from_u64(1), || {
                runs.fetch_add(1, Ordering::SeqCst);
            });
        }
        cache.validate_once(ContentHash::from_u64(2), || {
            runs.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        assert_eq!(cache.stats().schedule_validations, 2);
    }
}
