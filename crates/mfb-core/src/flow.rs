//! The top-down synthesis flow: scheduling → placement → routing, with
//! routing-feedback placement retries.

use crate::cache::{BaseKeys, StageCache, StageCtx};
use crate::config::{PlacementStrategy, RoutingStrategy, SynthesisConfig};
use crate::error::SynthesisError;
use mfb_analyze::prelude::{AnalysisInput, Analyzer};
use mfb_model::hash::ContentHash;
use mfb_model::prelude::*;
use mfb_place::prelude::*;
use mfb_route::prelude::*;
use mfb_sched::prelude::*;
use mfb_sim::prelude::{replay, SimReport};
use mfb_verify::prelude::{RuleRegistry, VerifyInput, VerifyReport};

/// A complete flow-layer physical design for one bioassay.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Solution {
    /// The binding and scheduling scheme.
    pub schedule: Schedule,
    /// The routing netlist with its connection priorities.
    pub netlist: NetList,
    /// Component locations.
    pub placement: Placement,
    /// Flow channels and realized times.
    pub routing: Routing,
    /// How many placements were tried before routing succeeded.
    pub attempts: u32,
}

impl Solution {
    /// Replays the solution through the independent validator.
    pub fn verify(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
    ) -> SimReport {
        replay(
            graph,
            components,
            &self.schedule,
            &self.placement,
            &self.routing,
            wash,
        )
    }

    /// Runs the full design-rule checker over the solution with every rule
    /// enabled and the paper's router configuration. Use
    /// [`drc_with`](Solution::drc_with) to toggle rules or match a custom
    /// router setup.
    pub fn drc(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
    ) -> VerifyReport {
        self.drc_with(
            graph,
            components,
            wash,
            RouterConfig::paper(),
            &RuleRegistry::with_all_rules(),
        )
    }

    /// Runs the design-rule checker with an explicit router configuration
    /// (consulted when the wash plan must be rebuilt) and rule registry.
    pub fn drc_with(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        router: RouterConfig,
        registry: &RuleRegistry,
    ) -> VerifyReport {
        let input = VerifyInput::new(
            graph,
            components,
            &self.schedule,
            &self.placement,
            &self.routing,
            wash,
            router,
        );
        registry.run(&input)
    }

    /// Runs the cross-stage dataflow analyses (contamination taint,
    /// storage liveness, valve conflicts) with every `ANA-*` rule enabled
    /// and the paper's router configuration. Use
    /// [`analyze_with`](Solution::analyze_with) to toggle rules.
    pub fn analyze(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
    ) -> VerifyReport {
        self.analyze_with(
            graph,
            components,
            wash,
            RouterConfig::paper(),
            &Analyzer::with_all_rules(),
        )
    }

    /// Runs the dataflow analyses with an explicit router configuration
    /// (consulted for wash-plan feasibility) and analyzer rule set.
    pub fn analyze_with(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        router: RouterConfig,
        analyzer: &Analyzer,
    ) -> VerifyReport {
        let input = AnalysisInput::new(
            graph,
            components,
            &self.schedule,
            &self.placement,
            &self.routing,
            wash,
            router,
        );
        analyzer.run(&input)
    }
}

/// The top-down synthesizer. Owns a [`SynthesisConfig`] and runs the full
/// pipeline on any (assay, component set) pair.
///
/// # Examples
///
/// ```
/// use mfb_core::prelude::*;
/// use mfb_model::prelude::*;
///
/// let mut b = SequencingGraph::builder();
/// let wash = LogLinearWash::paper_calibrated();
/// let d = DiffusionCoefficient::PROTEIN;
/// let mix = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
/// let det = b.operation(OperationKind::Detect, Duration::from_secs(4), d);
/// b.edge(mix, det).unwrap();
/// let assay = b.build().unwrap();
/// let chip = Allocation::new(1, 0, 0, 1).instantiate(&ComponentLibrary::default());
///
/// let solution = Synthesizer::paper_dcsa()
///     .synthesize(&assay, &chip, &wash)
///     .unwrap();
/// assert!(solution.verify(&assay, &chip, &wash).is_valid());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Synthesizer {
    config: SynthesisConfig,
}

impl Synthesizer {
    /// A synthesizer with an explicit configuration.
    pub fn new(config: SynthesisConfig) -> Self {
        Synthesizer { config }
    }

    /// The paper's flow (storage-aware scheduling, SA placement,
    /// conflict-aware routing).
    pub fn paper_dcsa() -> Self {
        Synthesizer::new(SynthesisConfig::paper_dcsa())
    }

    /// The paper's baseline flow (BA).
    pub fn paper_baseline() -> Self {
        Synthesizer::new(SynthesisConfig::paper_baseline())
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Runs the complete flow.
    ///
    /// Scheduling and netlist construction run once; placement and routing
    /// iterate — when routing fails on a placement, the flow re-places with
    /// a fresh annealing seed, growing the grid every eighth attempt, up to
    /// [`SynthesisConfig::max_placement_attempts`].
    ///
    /// # Errors
    ///
    /// Any stage error; see [`SynthesisError`].
    pub fn synthesize(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
    ) -> Result<Solution, SynthesisError> {
        self.synthesize_with_defects(graph, components, wash, &DefectMap::pristine())
    }

    /// [`synthesize`](Synthesizer::synthesize) on a damaged chip: dead
    /// components are excluded from binding, blocked cells from placement
    /// footprints and from every routed or parked path, and degraded cells
    /// pay their extra wash weight in the router's Eq. (5) cost. With a
    /// pristine map this is exactly the plain flow.
    ///
    /// The retry loop **fails fast** on errors that re-placing cannot fix
    /// (see [`SynthesisError::is_deterministic`]) instead of burning the
    /// whole attempt budget; for escalation beyond fresh seeds — larger
    /// grids, relaxed `t_c`, rebinding around broken components — see
    /// [`synthesize_resilient`](Synthesizer::synthesize_resilient).
    ///
    /// # Errors
    ///
    /// Any stage error; see [`SynthesisError`].
    pub fn synthesize_with_defects(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
    ) -> Result<Solution, SynthesisError> {
        self.synthesize_inner(graph, components, wash, defects, None, &Budget::unlimited())
    }

    /// The fully general entry point: any defect map, an optional shared
    /// [`StageCache`], and an execution [`Budget`].
    ///
    /// The budget is polled at stage boundaries and inside the placement
    /// and routing inner loops (the annealer once per temperature epoch,
    /// the router every few thousand A* expansions), so an expired
    /// deadline or a flipped [`CancelToken`] stops the run promptly. A
    /// checkpoint only ever *aborts*: a run that finishes within its
    /// budget is byte-identical to an unlimited run, and interrupted
    /// stage results are never stored in the cache.
    ///
    /// # Errors
    ///
    /// Any stage error, plus [`SynthesisError::DeadlineExceeded`] /
    /// [`SynthesisError::Cancelled`] when the budget trips first.
    pub fn synthesize_with(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
        cache: Option<&StageCache>,
        budget: &Budget,
    ) -> Result<Solution, SynthesisError> {
        self.synthesize_inner(graph, components, wash, defects, cache, budget)
    }

    /// [`synthesize`](Synthesizer::synthesize) through a shared
    /// [`StageCache`]: every stage result is looked up by the content hash
    /// of its inputs before being computed, so repeated synthesis of
    /// related jobs (same assay with a perturbed seed, ladder rungs reusing
    /// a schedule, a warm batch) skips unchanged stages entirely. Cached
    /// results are byte-identical to uncached synthesis.
    ///
    /// # Errors
    ///
    /// Any stage error; see [`SynthesisError`]. Errors are cached and
    /// replayed identically too.
    pub fn synthesize_cached(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        cache: &StageCache,
    ) -> Result<Solution, SynthesisError> {
        self.synthesize_inner(
            graph,
            components,
            wash,
            &DefectMap::pristine(),
            Some(cache),
            &Budget::unlimited(),
        )
    }

    /// [`synthesize_cached`](Synthesizer::synthesize_cached) on a damaged
    /// chip — the defect map participates in every cache key.
    ///
    /// # Errors
    ///
    /// Any stage error; see [`SynthesisError`].
    pub fn synthesize_cached_with_defects(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
        cache: &StageCache,
    ) -> Result<Solution, SynthesisError> {
        self.synthesize_inner(
            graph,
            components,
            wash,
            defects,
            Some(cache),
            &Budget::unlimited(),
        )
    }

    /// Runs only the scheduling and netlist stages, leaving their results
    /// in `cache` for a later [`synthesize_cached`](Synthesizer::synthesize_cached)
    /// to pick up warm. This is the "stage A" of the pipelined batch
    /// executor: scheduling of job *i+1* overlaps placement and routing of
    /// job *i*.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Sched`] when the assay cannot be bound; the error
    /// is cached, so the later full run replays it cheaply.
    pub fn prepare_cached(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
        cache: &StageCache,
    ) -> Result<(), SynthesisError> {
        let cfg = &self.config;
        let sched_cfg = SchedulerConfig {
            t_c: cfg.t_c,
            rule: cfg.binding,
        };
        let ctx = StageCtx::new(Some(cache), graph, components, wash, defects);
        let (schedule, schedule_h) = ctx.schedule(&sched_cfg, graph, components, || {
            schedule_with_defects(graph, components, wash, &sched_cfg, defects)
        })?;
        ctx.netlist(schedule_h, cfg.beta, cfg.gamma, || {
            NetList::build(&schedule, graph, wash, cfg.beta, cfg.gamma)
        });
        Ok(())
    }

    /// The cache key under which this synthesizer's schedule for
    /// `(graph, components, wash, defects)` is stored. Useful with
    /// [`StageCache::contains_schedule`] to attribute warm hits
    /// deterministically before launching a batch.
    pub fn schedule_cache_key(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
    ) -> ContentHash {
        let sched_cfg = SchedulerConfig {
            t_c: self.config.t_c,
            rule: self.config.binding,
        };
        BaseKeys::new(graph, components, wash, defects).schedule_key(&sched_cfg)
    }

    fn synthesize_inner(
        &self,
        graph: &SequencingGraph,
        components: &ComponentSet,
        wash: &dyn WashModel,
        defects: &DefectMap,
        cache: Option<&StageCache>,
        budget: &Budget,
    ) -> Result<Solution, SynthesisError> {
        let _flow_span = mfb_obs::obs_span!(
            "flow.synthesize",
            ops = graph.ops().count() as u64,
            components = components.len() as u64,
            cached = cache.is_some(),
        );
        let cfg = &self.config;
        let sched_cfg = SchedulerConfig {
            t_c: cfg.t_c,
            rule: cfg.binding,
        };
        let ctx = StageCtx::new(cache, graph, components, wash, defects);
        budget.check().map_err(SynthesisError::from)?;
        let (schedule, schedule_h) = {
            let _span = mfb_obs::obs_span!("stage.schedule");
            ctx.schedule(&sched_cfg, graph, components, || {
                schedule_with_defects(graph, components, wash, &sched_cfg, defects)
            })?
        };
        budget.check().map_err(SynthesisError::from)?;
        let (netlist, netlist_key) = {
            let _span = mfb_obs::obs_span!("stage.netlist");
            ctx.netlist(schedule_h, cfg.beta, cfg.gamma, || {
                NetList::build(&schedule, graph, wash, cfg.beta, cfg.gamma)
            })
        };

        let base_grid = cfg.grid.unwrap_or_else(|| auto_grid(components));
        let attempts = cfg.max_placement_attempts.max(1);

        // One place-and-route attempt: a pure function of the attempt index
        // (the SA seed and grid growth derive from it), so attempts can run
        // in any order — or concurrently — without changing any result.
        let attempt_once =
            |attempt: u32| -> Result<(Placement, Routing, ContentHash), AttemptError> {
                // Grow the grid every eighth attempt (4/3 linear each step),
                // capped so the factor arithmetic cannot overflow however large
                // the caller sets `max_placement_attempts`.
                let growth = (attempt / 8).min(8);
                let side = |s: u32| {
                    let grown = u64::from(s) * 4u64.pow(growth) / 3u64.pow(growth);
                    (grown.min(u64::from(u32::MAX)) as u32).max(s)
                };
                let grid = GridSpec::new(
                    side(base_grid.width),
                    side(base_grid.height),
                    base_grid.pitch_mm,
                );

                budget.check().map_err(AttemptError::Interrupt)?;
                let seed = cfg.sa.seed.wrapping_add(u64::from(attempt));
                let (placement, place_h) = {
                    let _span = mfb_obs::obs_span!("stage.place", attempt = attempt, seed = seed);
                    ctx.place(netlist_key, grid, cfg, seed, || match cfg.placement {
                        PlacementStrategy::SimulatedAnnealing => {
                            // Delegates to the plain single-chain loop when
                            // `cfg.sa.chains <= 1` (the paper configuration).
                            let sa = SaConfig { seed, ..cfg.sa };
                            place_sa_tempered_budgeted(
                                components, &netlist, grid, &sa, defects, budget,
                            )
                            .map(|(p, _)| p)
                        }
                        PlacementStrategy::Constructive => place_constructive_with_defects(
                            components,
                            &netlist,
                            grid,
                            SpacingParams::default_routing(),
                            defects,
                        ),
                        PlacementStrategy::ForceDirected => {
                            place_force_directed_with_defects(components, &netlist, grid, defects)
                        }
                    })
                    .map_err(AttemptError::Place)?
                };

                let _route_span = mfb_obs::obs_span!("stage.route", attempt = attempt);
                let (routed, route_key) =
                    ctx.route(schedule_h, place_h, cfg, || match cfg.routing {
                        RoutingStrategy::ConflictAware => {
                            let mut scratch = SearchScratch::new();
                            route_dcsa_budgeted(
                                &schedule,
                                graph,
                                &placement,
                                wash,
                                &cfg.router,
                                defects,
                                &mut scratch,
                                budget,
                            )
                        }
                        RoutingStrategy::ConstructionByCorrection => route_corrected_with_defects(
                            &schedule,
                            graph,
                            &placement,
                            wash,
                            &cfg.router,
                            defects,
                        ),
                        RoutingStrategy::Negotiated => {
                            let mut scratch = SearchScratch::new();
                            route_negotiated_budgeted(
                                &schedule,
                                graph,
                                &placement,
                                wash,
                                &cfg.router,
                                defects,
                                &mut scratch,
                                budget,
                            )
                        }
                    });
                match routed {
                    Ok(routing) => Ok((placement, routing, route_key)),
                    Err(e) => Err(AttemptError::Route(e)),
                }
            };

        // Attempt 0 runs alone (the common case routes first try); retry
        // batches then fan out across threads. Results are consumed in
        // attempt order, so the outcome — which attempt wins, which error
        // surfaces, the exact `attempts` count — is byte-identical to the
        // serial loop regardless of `MFB_THREADS`.
        let batch = mfb_model::par::thread_limit().max(1) as u32;
        let mut last_route_err = None;
        let mut chosen: Option<(u32, Placement, Routing, ContentHash)> = None;
        let mut start = 0u32;
        'search: while start < attempts {
            budget.check().map_err(SynthesisError::from)?;
            let chunk = if start == 0 {
                1
            } else {
                (attempts - start).min(batch)
            };
            let results =
                mfb_model::par::par_map_ordered(chunk as usize, |k| attempt_once(start + k as u32));
            for (k, res) in results.into_iter().enumerate() {
                let attempt = start + k as u32;
                match res {
                    Ok((placement, routing, route_key)) => {
                        chosen = Some((attempt, placement, routing, route_key));
                        break 'search;
                    }
                    // A budget interrupt in any stage of any attempt ends the
                    // whole run with the flow-level typed error — later
                    // attempts would only trip the same checkpoint.
                    Err(AttemptError::Interrupt(why)) => return Err(why.into()),
                    Err(AttemptError::Place(PlaceError::Interrupted(why))) => {
                        return Err(why.into());
                    }
                    Err(AttemptError::Route(RouteError::Interrupted(why))) => {
                        return Err(why.into());
                    }
                    Err(AttemptError::Place(e)) => return Err(e.into()),
                    // A placement-independent routing error (e.g. a schedule
                    // the router cannot account for) reproduces identically
                    // on every placement — return it now instead of burning
                    // the remaining attempt budget on a foregone conclusion.
                    Err(AttemptError::Route(e)) if route_error_is_placement_independent(&e) => {
                        return Err(SynthesisError::Route {
                            last: e,
                            attempts: attempt + 1,
                        });
                    }
                    Err(AttemptError::Route(e)) => last_route_err = Some(e),
                }
            }
            start += chunk;
        }

        let Some((attempt, placement, mut routing, route_key)) = chosen else {
            let last = match last_route_err {
                Some(e) => e,
                None => unreachable!("attempts >= 1 and every iteration records or returns"),
            };
            return Err(SynthesisError::Route { last, attempts });
        };
        budget.check().map_err(SynthesisError::from)?;
        if cfg.optimize_channels {
            let _span = mfb_obs::obs_span!("stage.optimize");
            let optimized = ctx.optimize(route_key, || {
                optimize_channel_length_with_defects(
                    &routing,
                    &schedule,
                    graph,
                    &placement,
                    wash,
                    &cfg.router,
                    defects,
                )
            });
            routing = optimized;
        }
        Ok(Solution {
            schedule,
            netlist,
            placement,
            routing,
            attempts: attempt + 1,
        })
    }
}

/// One retry-loop attempt's failure: a placement error aborts the whole
/// flow, a routing error is retried (unless placement-independent), and a
/// budget interrupt — whether caught at the attempt's own checkpoint or
/// inside a stage — aborts with the flow-level typed error.
enum AttemptError {
    Place(PlaceError),
    Route(RouteError),
    Interrupt(BudgetExceeded),
}

/// True when re-placing with a different seed or grid cannot change the
/// routing outcome: the error is a property of the schedule, not the layout.
pub(crate) fn route_error_is_placement_independent(e: &RouteError) -> bool {
    matches!(e, RouteError::InconsistentSchedule { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wash() -> LogLinearWash {
        LogLinearWash::paper_calibrated()
    }

    fn tiny() -> (SequencingGraph, ComponentSet) {
        let mut b = SequencingGraph::builder();
        let d = DiffusionCoefficient::PROTEIN;
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
        let m2 = b.operation(OperationKind::Mix, Duration::from_secs(4), d);
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(3), d);
        b.edge(m0, m2).unwrap();
        b.edge(m1, m2).unwrap();
        b.edge(m2, dt).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 0, 0, 1).instantiate(&ComponentLibrary::default());
        (g, comps)
    }

    #[test]
    fn paper_flow_produces_verified_solution() {
        let (g, comps) = tiny();
        let s = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash())
            .unwrap();
        let report = s.verify(&g, &comps, &wash());
        assert!(report.is_valid(), "{:?}", report.violations);
        assert_eq!(s.routing.completion(), s.schedule.completion_time());
        assert!(s.attempts >= 1);
    }

    #[test]
    fn baseline_flow_produces_verified_solution() {
        let (g, comps) = tiny();
        let s = Synthesizer::paper_baseline()
            .synthesize(&g, &comps, &wash())
            .unwrap();
        let report = s.verify(&g, &comps, &wash());
        assert!(report.is_valid(), "{:?}", report.violations);
        assert!(s.routing.completion() >= s.schedule.completion_time());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let (g, comps) = tiny();
        let a = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash())
            .unwrap();
        let b = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash())
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.routing, b.routing);
    }

    #[test]
    fn missing_component_kind_fails_cleanly() {
        let mut b = SequencingGraph::builder();
        b.operation(
            OperationKind::Filter,
            Duration::from_secs(2),
            DiffusionCoefficient::PROTEIN,
        );
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let err = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash())
            .unwrap_err();
        assert!(matches!(err, SynthesisError::Sched(_)));
    }

    #[test]
    fn explicit_grid_is_respected() {
        let (g, comps) = tiny();
        let mut cfg = SynthesisConfig::paper_dcsa();
        cfg.grid = Some(GridSpec::new(30, 20, 10.0));
        let s = Synthesizer::new(cfg)
            .synthesize(&g, &comps, &wash())
            .unwrap();
        assert_eq!(s.placement.grid().width, 30);
        assert_eq!(s.placement.grid().height, 20);
    }
}
