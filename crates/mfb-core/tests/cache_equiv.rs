//! Stage-cache equivalence golden suite.
//!
//! The content-addressed [`StageCache`] promises that caching is purely a
//! wall-clock optimization: a cached synthesis — cold (populating) or warm
//! (replaying) — must produce solutions **byte-identical** to the plain
//! uncached flow, and the recovery ladder must produce an identical trace.
//! These tests pin that contract, plus the cache-accounting invariants the
//! batch engine's reports rely on (deterministic hit/miss counters, one
//! schedule validation per distinct schedule).

use mfb_bench_suite::benchmark_by_name;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn setup(bench: &str) -> (SequencingGraph, ComponentSet) {
    let b = benchmark_by_name(bench).expect("Table-I benchmark must exist");
    let comps = b.components(&ComponentLibrary::default());
    (b.graph, comps)
}

#[test]
fn cached_solutions_are_byte_identical_to_uncached() {
    for bench in ["PCR", "IVD"] {
        let (graph, comps) = setup(bench);
        let syn = Synthesizer::paper_dcsa();

        let plain = syn
            .synthesize(&graph, &comps, &wash())
            .expect("paper flow must synthesize its own benchmark");
        let want = serde_json::to_string(&plain).expect("Solution serializes");

        let cache = StageCache::new();
        let cold = syn
            .synthesize_cached(&graph, &comps, &wash(), &cache)
            .expect("cold cached run must synthesize");
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            want,
            "{bench}: cold cached run diverged from uncached"
        );
        let miss_stats = cache.stats();
        assert_eq!(miss_stats.hits(), 0, "{bench}: a cold run cannot hit");
        assert!(miss_stats.misses() > 0);

        let warm = syn
            .synthesize_cached(&graph, &comps, &wash(), &cache)
            .expect("warm cached run must synthesize");
        assert_eq!(
            serde_json::to_string(&warm).unwrap(),
            want,
            "{bench}: warm cached run diverged from uncached"
        );
        let warm_stats = cache.stats() - miss_stats;
        assert_eq!(
            warm_stats.misses(),
            0,
            "{bench}: a warm replay must not recompute any stage"
        );
        assert!(warm_stats.hits() > 0);
    }
}

#[test]
fn schedules_validate_once_per_distinct_schedule() {
    let (graph, comps) = setup("PCR");
    let syn = Synthesizer::paper_dcsa();
    let cache = StageCache::new();

    for _ in 0..3 {
        syn.synthesize_cached(&graph, &comps, &wash(), &cache)
            .expect("PCR synthesizes");
    }
    let stats = cache.stats();
    assert_eq!(stats.schedule_misses, 1, "one distinct schedule");
    assert_eq!(
        stats.schedule_validations, 1,
        "a schedule is validated once per hash, not once per request"
    );

    // A different t_c is a different schedule key: one more validation.
    let mut cfg = SynthesisConfig::paper_dcsa();
    cfg.t_c = Duration::from_secs(3);
    Synthesizer::new(cfg)
        .synthesize_cached(&graph, &comps, &wash(), &cache)
        .expect("PCR synthesizes under t_c = 3");
    let stats = cache.stats();
    assert_eq!(stats.schedule_misses, 2);
    assert_eq!(stats.schedule_validations, 2);
}

#[test]
fn cached_recovery_ladder_matches_uncached_trace() {
    let (graph, comps) = setup("IVD");
    let mut defects = DefectMap::pristine();
    for x in 0..6 {
        defects.block_cell(CellPos::new(x, 3));
    }
    let syn = Synthesizer::paper_dcsa();
    let policy = RecoveryPolicy::default();

    let plain = syn.synthesize_resilient(&graph, &comps, &wash(), &defects, &policy);
    let want = format!("{plain:?}");

    let cache = StageCache::new();
    let cold = syn.synthesize_resilient_cached(&graph, &comps, &wash(), &defects, &policy, &cache);
    assert_eq!(
        format!("{cold:?}"),
        want,
        "cold cached recovery diverged from uncached"
    );
    let cold_stats = cache.stats();

    let warm = syn.synthesize_resilient_cached(&graph, &comps, &wash(), &defects, &policy, &cache);
    assert_eq!(
        format!("{warm:?}"),
        want,
        "warm cached recovery diverged from uncached"
    );
    let warm_stats = cache.stats() - cold_stats;
    assert_eq!(
        warm_stats.schedule_misses, 0,
        "warm ladder must reuse every schedule"
    );
    assert_eq!(
        warm_stats.schedule_validations, 0,
        "warm ladder must not re-validate schedules"
    );
}

#[test]
fn defect_maps_address_distinct_cache_entries() {
    let (graph, comps) = setup("PCR");
    let syn = Synthesizer::paper_dcsa();
    let cache = StageCache::new();

    syn.synthesize_cached(&graph, &comps, &wash(), &cache)
        .expect("pristine PCR synthesizes");
    let pristine_stats = cache.stats();

    let mut defects = DefectMap::pristine();
    defects.block_cell(CellPos::new(0, 0));
    let damaged = syn
        .synthesize_cached_with_defects(&graph, &comps, &wash(), &defects, &cache)
        .expect("lightly damaged PCR synthesizes");
    let delta = cache.stats() - pristine_stats;
    assert!(
        delta.misses() > 0,
        "a different defect map must not be served from pristine entries"
    );

    let uncached = syn
        .synthesize_with_defects(&graph, &comps, &wash(), &defects)
        .expect("uncached damaged PCR synthesizes");
    assert_eq!(
        serde_json::to_string(&damaged).unwrap(),
        serde_json::to_string(&uncached).unwrap(),
        "damaged-chip cached run diverged from uncached"
    );
}
