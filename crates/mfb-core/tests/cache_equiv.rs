//! Stage-cache equivalence golden suite.
//!
//! The content-addressed [`StageCache`] promises that caching is purely a
//! wall-clock optimization: a cached synthesis — cold (populating) or warm
//! (replaying) — must produce solutions **byte-identical** to the plain
//! uncached flow, and the recovery ladder must produce an identical trace.
//! These tests pin that contract, plus the cache-accounting invariants the
//! batch engine's reports rely on (deterministic hit/miss counters, one
//! schedule validation per distinct schedule).

use mfb_bench_suite::benchmark_by_name;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn setup(bench: &str) -> (SequencingGraph, ComponentSet) {
    let b = benchmark_by_name(bench).expect("Table-I benchmark must exist");
    let comps = b.components(&ComponentLibrary::default());
    (b.graph, comps)
}

#[test]
fn cached_solutions_are_byte_identical_to_uncached() {
    for bench in ["PCR", "IVD"] {
        let (graph, comps) = setup(bench);
        let syn = Synthesizer::paper_dcsa();

        let plain = syn
            .synthesize(&graph, &comps, &wash())
            .expect("paper flow must synthesize its own benchmark");
        let want = serde_json::to_string(&plain).expect("Solution serializes");

        let cache = StageCache::new();
        let cold = syn
            .synthesize_cached(&graph, &comps, &wash(), &cache)
            .expect("cold cached run must synthesize");
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            want,
            "{bench}: cold cached run diverged from uncached"
        );
        let miss_stats = cache.stats();
        assert_eq!(miss_stats.hits(), 0, "{bench}: a cold run cannot hit");
        assert!(miss_stats.misses() > 0);

        let warm = syn
            .synthesize_cached(&graph, &comps, &wash(), &cache)
            .expect("warm cached run must synthesize");
        assert_eq!(
            serde_json::to_string(&warm).unwrap(),
            want,
            "{bench}: warm cached run diverged from uncached"
        );
        let warm_stats = cache.stats() - miss_stats;
        assert_eq!(
            warm_stats.misses(),
            0,
            "{bench}: a warm replay must not recompute any stage"
        );
        assert!(warm_stats.hits() > 0);
    }
}

#[test]
fn schedules_validate_once_per_distinct_schedule() {
    let (graph, comps) = setup("PCR");
    let syn = Synthesizer::paper_dcsa();
    let cache = StageCache::new();

    for _ in 0..3 {
        syn.synthesize_cached(&graph, &comps, &wash(), &cache)
            .expect("PCR synthesizes");
    }
    let stats = cache.stats();
    assert_eq!(stats.schedule_misses, 1, "one distinct schedule");
    assert_eq!(
        stats.schedule_validations, 1,
        "a schedule is validated once per hash, not once per request"
    );

    // A different t_c is a different schedule key: one more validation.
    let mut cfg = SynthesisConfig::paper_dcsa();
    cfg.t_c = Duration::from_secs(3);
    Synthesizer::new(cfg)
        .synthesize_cached(&graph, &comps, &wash(), &cache)
        .expect("PCR synthesizes under t_c = 3");
    let stats = cache.stats();
    assert_eq!(stats.schedule_misses, 2);
    assert_eq!(stats.schedule_validations, 2);
}

#[test]
fn cached_recovery_ladder_matches_uncached_trace() {
    let (graph, comps) = setup("IVD");
    let mut defects = DefectMap::pristine();
    for x in 0..6 {
        defects.block_cell(CellPos::new(x, 3));
    }
    let syn = Synthesizer::paper_dcsa();
    let policy = RecoveryPolicy::default();

    let plain = syn.synthesize_resilient(&graph, &comps, &wash(), &defects, &policy);
    let want = format!("{plain:?}");

    let cache = StageCache::new();
    let cold = syn.synthesize_resilient_cached(&graph, &comps, &wash(), &defects, &policy, &cache);
    assert_eq!(
        format!("{cold:?}"),
        want,
        "cold cached recovery diverged from uncached"
    );
    let cold_stats = cache.stats();

    let warm = syn.synthesize_resilient_cached(&graph, &comps, &wash(), &defects, &policy, &cache);
    assert_eq!(
        format!("{warm:?}"),
        want,
        "warm cached recovery diverged from uncached"
    );
    let warm_stats = cache.stats() - cold_stats;
    assert_eq!(
        warm_stats.schedule_misses, 0,
        "warm ladder must reuse every schedule"
    );
    assert_eq!(
        warm_stats.schedule_validations, 0,
        "warm ladder must not re-validate schedules"
    );
}

#[test]
fn defect_maps_address_distinct_cache_entries() {
    let (graph, comps) = setup("PCR");
    let syn = Synthesizer::paper_dcsa();
    let cache = StageCache::new();

    syn.synthesize_cached(&graph, &comps, &wash(), &cache)
        .expect("pristine PCR synthesizes");
    let pristine_stats = cache.stats();

    let mut defects = DefectMap::pristine();
    defects.block_cell(CellPos::new(0, 0));
    let damaged = syn
        .synthesize_cached_with_defects(&graph, &comps, &wash(), &defects, &cache)
        .expect("lightly damaged PCR synthesizes");
    let delta = cache.stats() - pristine_stats;
    assert!(
        delta.misses() > 0,
        "a different defect map must not be served from pristine entries"
    );

    let uncached = syn
        .synthesize_with_defects(&graph, &comps, &wash(), &defects)
        .expect("uncached damaged PCR synthesizes");
    assert_eq!(
        serde_json::to_string(&damaged).unwrap(),
        serde_json::to_string(&uncached).unwrap(),
        "damaged-chip cached run diverged from uncached"
    );
}

#[test]
fn interrupted_runs_never_poison_the_cache() {
    let (graph, comps) = setup("PCR");
    let syn = Synthesizer::paper_dcsa();
    let cache = StageCache::new();

    // A pre-cancelled budget: the run claims in-flight slots, trips the
    // first checkpoint inside the stage, and the interrupted result must
    // be released as uncacheable — never stored where a later request
    // could observe it.
    let token = CancelToken::new();
    token.cancel();
    let cancelled = Budget::unlimited().with_cancel(token);
    let err = syn
        .synthesize_with(
            &graph,
            &comps,
            &wash(),
            &DefectMap::pristine(),
            Some(&cache),
            &cancelled,
        )
        .expect_err("a cancelled budget must interrupt synthesis");
    assert_eq!(err.interrupt(), Some(BudgetExceeded::Cancelled));
    assert_eq!(
        cache.ready_entries(),
        0,
        "cancelled stage results must not be cached"
    );

    // Same contract for the deadline flavor.
    let expired = Budget::with_timeout(std::time::Duration::ZERO);
    let err = syn
        .synthesize_with(
            &graph,
            &comps,
            &wash(),
            &DefectMap::pristine(),
            Some(&cache),
            &expired,
        )
        .expect_err("an expired deadline must interrupt synthesis");
    assert_eq!(err.interrupt(), Some(BudgetExceeded::DeadlineExceeded));
    assert_eq!(
        cache.ready_entries(),
        0,
        "deadline-expired stage results must not be cached"
    );

    // The cache is unharmed: a real run recomputes everything (nothing
    // was stored, so it cannot hit) and matches the uncached flow.
    let plain = syn
        .synthesize(&graph, &comps, &wash())
        .expect("PCR synthesizes");
    let solved = syn
        .synthesize_cached(&graph, &comps, &wash(), &cache)
        .expect("PCR synthesizes after interrupted attempts");
    assert_eq!(
        serde_json::to_string(&solved).unwrap(),
        serde_json::to_string(&plain).unwrap(),
        "a cache that saw interrupted runs must still reproduce the plain flow"
    );
    assert!(cache.ready_entries() > 0);
}

#[test]
fn waiters_survive_a_cancelled_leader() {
    let (graph, comps) = setup("PCR");
    let syn = Synthesizer::paper_dcsa();
    let plain = syn
        .synthesize(&graph, &comps, &wash())
        .expect("PCR synthesizes");
    let want = serde_json::to_string(&plain).unwrap();

    // One cancelled requester races three unlimited ones on a shared
    // cache. Whatever the interleaving, the in-flight dedup must not
    // deadlock: a cancelled leader's released slot is taken over by a
    // waiter, and a cancelled waiter simply errors at its next
    // checkpoint. Every unlimited run must produce the plain solution.
    let cache = StageCache::new();
    let token = CancelToken::new();
    token.cancel();

    std::thread::scope(|s| {
        let leader = {
            let budget = Budget::unlimited().with_cancel(token.clone());
            let (graph, comps, cache, syn) = (&graph, &comps, &cache, &syn);
            s.spawn(move || {
                syn.synthesize_with(
                    graph,
                    comps,
                    &wash(),
                    &DefectMap::pristine(),
                    Some(cache),
                    &budget,
                )
            })
        };
        let followers: Vec<_> = (0..3)
            .map(|_| {
                let (graph, comps, cache, syn) = (&graph, &comps, &cache, &syn);
                s.spawn(move || {
                    syn.synthesize_with(
                        graph,
                        comps,
                        &wash(),
                        &DefectMap::pristine(),
                        Some(cache),
                        &Budget::unlimited(),
                    )
                })
            })
            .collect();

        let err = leader
            .join()
            .expect("cancelled leader must not panic")
            .expect_err("cancelled leader must error");
        assert_eq!(err.interrupt(), Some(BudgetExceeded::Cancelled));
        for f in followers {
            let sol = f
                .join()
                .expect("waiter must not panic")
                .expect("unlimited waiters must synthesize");
            assert_eq!(
                serde_json::to_string(&sol).unwrap(),
                want,
                "waiter diverged after taking over from a cancelled leader"
            );
        }
    });

    // The survivors converged on one stored schedule, validated once —
    // the cancelled leader neither validated nor stored anything.
    let stats = cache.stats();
    assert_eq!(stats.schedule_validations, 1);
}
