//! Observability golden suite: tracing provably never perturbs a solution.
//!
//! The `mfb-obs` probes observe the flow but must not branch it, so a run
//! with a collector installed has to produce a **byte-identical**
//! [`Solution`] to an untraced run — on every benchmark exercised here and
//! under both the serial (`MFB_THREADS=1`) and fan-out (`MFB_THREADS=8`)
//! executors. A second test pins the recovery-ladder event contract: one
//! `recovery.rung` instant per failed attempt, mirroring the
//! [`RecoveryTrace`] exactly, plus a final `recovered` event naming the
//! rung that succeeded.
//!
//! The thread-count sweep lives in a single `#[test]` because `MFB_THREADS`
//! is a process-global environment variable (same pattern as
//! `perf_equiv.rs`).

#![cfg(feature = "obs-trace")]

use mfb_bench_suite::benchmark_by_name;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

/// Serialized DCSA solution for `bench`, optionally run under an installed
/// trace collector. Returns the solution JSON and the finished trace.
fn solve_json(threads: &str, bench: &str, traced: bool) -> (String, mfb_obs::Trace) {
    std::env::set_var("MFB_THREADS", threads);
    let b = benchmark_by_name(bench).expect("Table-I benchmark must exist");
    let comps = b.components(&ComponentLibrary::default());
    let collector = mfb_obs::TraceCollector::new();
    let solution = {
        let _guard = traced.then(|| mfb_obs::install(&collector));
        Synthesizer::paper_dcsa()
            .synthesize(&b.graph, &comps, &wash())
            .expect("paper flow must synthesize its own Table-I benchmark")
    };
    (
        serde_json::to_string(&solution).expect("Solution serializes"),
        collector.finish(),
    )
}

#[test]
fn tracing_on_or_off_yields_byte_identical_solutions() {
    for bench in ["PCR", "IVD", "Synthetic1"] {
        let (untraced_1, empty) = solve_json("1", bench, false);
        assert!(
            empty.events.is_empty(),
            "{bench}: no events without an installed collector"
        );
        for threads in ["1", "8"] {
            let (traced, trace) = solve_json(threads, bench, true);
            assert_eq!(
                untraced_1, traced,
                "{bench}: Solution must not depend on tracing or MFB_THREADS={threads}"
            );
            assert_eq!(trace.open_spans, 0, "{bench}: every span closed");
            assert!(
                trace.spans_named("flow.synthesize").count() == 1
                    && trace.spans_named("stage.place").count() >= 1
                    && trace.spans_named("stage.route").count() >= 1,
                "{bench}: traced run records the stage spans"
            );
            mfb_obs::export::check_events(&trace.events).expect("well-formed trace");
        }
    }
    std::env::remove_var("MFB_THREADS");
}

/// Fault-injected ladder run (the `resilience.rs` all-cells-dead fixture):
/// the trace must carry one `recovery.rung` instant per recorded failed
/// attempt — same order, rung names and error strings — and exactly one
/// final `recovered` instant naming the rung that produced the solution.
#[test]
fn ladder_rungs_emit_one_event_per_escalation() {
    let b = benchmark_by_name("PCR").expect("PCR exists");
    let comps = b.components(&ComponentLibrary::default());
    let w = wash();
    let synth = Synthesizer::paper_dcsa();

    // Kill the entire auto grid so the reseed rung fails deterministically
    // and recovery must escalate to grid growth.
    let pristine = synth.synthesize(&b.graph, &comps, &w).expect("pristine");
    let grid = pristine.placement.grid();
    let mut defects = DefectMap::pristine();
    for y in 0..grid.height {
        for x in 0..grid.width {
            defects.block_cell(CellPos::new(x, y));
        }
    }

    let collector = mfb_obs::TraceCollector::new();
    let out = {
        let _guard = mfb_obs::install(&collector);
        synth.synthesize_resilient(&b.graph, &comps, &w, &defects, &RecoveryPolicy::standard())
    };
    assert!(out.is_success(), "ladder recovers: {:?}", out.trace);
    let trace = collector.finish();

    let rung_events: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name == "recovery.rung")
        .collect();
    let (failed, recovered): (Vec<&mfb_obs::TraceEvent>, Vec<&mfb_obs::TraceEvent>) = rung_events
        .iter()
        .copied()
        .partition(|e| e.str_field("outcome") == Some("failed"));

    assert_eq!(
        failed.len(),
        out.trace.attempts.len(),
        "one failed event per recorded ladder attempt"
    );
    for (event, attempt) in failed.iter().zip(&out.trace.attempts) {
        let rung_name = attempt.rung.to_string();
        assert_eq!(event.str_field("rung"), Some(rung_name.as_str()));
        assert_eq!(event.u64_field("attempt"), Some(u64::from(attempt.attempt)));
        assert_eq!(event.str_field("error"), Some(attempt.error.as_str()));
    }

    assert_eq!(recovered.len(), 1, "exactly one recovered event");
    assert_eq!(
        recovered[0].str_field("outcome"),
        Some("recovered"),
        "the non-failed event is the success marker"
    );
    // The fixture proves escalation: reseed failed, so the success cannot
    // come from the reseed rung (resilience.rs shows it is grid growth).
    assert_eq!(recovered[0].str_field("rung"), Some("grow-grid"));
    // The success event is the last rung event chronologically.
    assert_eq!(rung_events.last().unwrap().seq, recovered[0].seq);

    // And the whole thing still holds the headline guarantee: the traced
    // resilient run matches an untraced one byte for byte.
    let untraced =
        synth.synthesize_resilient(&b.graph, &comps, &w, &defects, &RecoveryPolicy::standard());
    assert_eq!(format!("{untraced:?}"), format!("{out:?}"));
}
