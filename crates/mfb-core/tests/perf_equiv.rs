//! Thread-count determinism golden suite.
//!
//! The deterministic fan-out in `mfb_model::par` promises that every
//! parallel sweep (placement retry attempts, recovery-ladder reseeds) folds
//! its results in input order, so the synthesized [`Solution`] must be
//! **byte-identical** no matter how many worker threads ran. This test pins
//! that contract: it runs the full paper flow with `MFB_THREADS=1` (the
//! plain serial loop) and `MFB_THREADS=8` and compares the serialized
//! solutions character for character.
//!
//! Everything lives in a single `#[test]` because the thread limit is read
//! from a process-global environment variable: parallel test functions
//! mutating it would race.

use mfb_bench_suite::benchmark_by_name;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

/// Serialized solution for `bench` under the paper DCSA flow with the given
/// thread limit.
fn solve_json(threads: &str, bench: &str) -> String {
    std::env::set_var("MFB_THREADS", threads);
    let b = benchmark_by_name(bench).expect("Table-I benchmark must exist");
    let comps = b.components(&ComponentLibrary::default());
    let solution = Synthesizer::paper_dcsa()
        .synthesize(&b.graph, &comps, &wash())
        .expect("paper flow must synthesize its own Table-I benchmark");
    serde_json::to_string(&solution).expect("Solution serializes")
}

/// Debug-formatted resilient outcome for a damaged IVD chip under the given
/// thread limit. Debug output covers the solution, the recovery trace and
/// any degraded artifacts, so a divergence anywhere in the ladder shows up.
fn resilient_debug(threads: &str) -> String {
    std::env::set_var("MFB_THREADS", threads);
    let b = benchmark_by_name("IVD").expect("IVD exists");
    let comps = b.components(&ComponentLibrary::default());
    let mut defects = DefectMap::pristine();
    // A blocked stripe forces at least one failed attempt so the ladder
    // (whose reseed rung is the parallel one) actually runs.
    for x in 0..6 {
        defects.block_cell(CellPos::new(x, 3));
    }
    let out = Synthesizer::paper_dcsa().synthesize_resilient(
        &b.graph,
        &comps,
        &wash(),
        &defects,
        &RecoveryPolicy::default(),
    );
    format!("{out:?}")
}

#[test]
fn solution_is_byte_identical_across_thread_counts() {
    // Two real and one synthetic benchmark keep runtime modest while
    // exercising both routed flows and the placement retry loop.
    for bench in ["PCR", "IVD", "Synthetic1"] {
        let serial = solve_json("1", bench);
        let parallel = solve_json("8", bench);
        assert_eq!(
            serial, parallel,
            "{bench}: Solution must not depend on MFB_THREADS"
        );
    }

    let serial = resilient_debug("1");
    let parallel = resilient_debug("8");
    assert_eq!(
        serial, parallel,
        "resilient outcome must not depend on MFB_THREADS"
    );

    std::env::remove_var("MFB_THREADS");
}
