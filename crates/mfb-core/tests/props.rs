//! Property-based tests for the whole-flow configuration surface: every
//! placement strategy, the channel-length cleanup, and the post-synthesis
//! audits.

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_core::config::PlacementStrategy;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use proptest::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn instance(n: usize, seed: u64) -> (SequencingGraph, ComponentSet) {
    let g = SyntheticSpec::new(n, seed).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    (g, comps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_placement_strategy_yields_valid_solutions(
        n in 2usize..18,
        seed in any::<u64>(),
    ) {
        let (g, comps) = instance(n, seed);
        for strategy in [
            PlacementStrategy::SimulatedAnnealing,
            PlacementStrategy::Constructive,
            PlacementStrategy::ForceDirected,
        ] {
            let mut cfg = SynthesisConfig::paper_dcsa();
            cfg.placement = strategy;
            match Synthesizer::new(cfg).synthesize(&g, &comps, &wash()) {
                Ok(sol) => {
                    let report = sol.verify(&g, &comps, &wash());
                    prop_assert!(
                        report.is_valid(),
                        "{:?}: {:?}",
                        strategy,
                        report.violations
                    );
                }
                // The annealer's seed retries make routability effectively
                // total; the deterministic placers get no such entropy, so
                // an occasional unroutable layout is a legitimate outcome —
                // it must surface as a clean error, never a panic or an
                // invalid solution.
                Err(e) => {
                    prop_assert!(
                        strategy != PlacementStrategy::SimulatedAnnealing,
                        "SA must stay routable: {e}"
                    );
                    prop_assert!(
                        matches!(e, SynthesisError::Route { .. }),
                        "{strategy:?}: unexpected error class {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn channel_cleanup_never_worsens_anything(
        n in 2usize..18,
        seed in any::<u64>(),
    ) {
        let (g, comps) = instance(n, seed);
        let plain = Synthesizer::paper_dcsa().synthesize(&g, &comps, &wash()).unwrap();
        let mut cfg = SynthesisConfig::paper_dcsa();
        cfg.optimize_channels = true;
        let cleaned = Synthesizer::new(cfg).synthesize(&g, &comps, &wash()).unwrap();

        let mp = SolutionMetrics::of(&plain, &comps);
        let mc = SolutionMetrics::of(&cleaned, &comps);
        prop_assert!(mc.channel_length_mm <= mp.channel_length_mm + 1e-9);
        prop_assert_eq!(mc.execution_time, mp.execution_time, "cleanup must not retime");
        prop_assert!((mc.utilization - mp.utilization).abs() < 1e-12);
        let report = cleaned.verify(&g, &comps, &wash());
        prop_assert!(report.is_valid(), "{:?}", report.violations);
    }

    #[test]
    fn transport_audit_is_internally_consistent(
        n in 2usize..18,
        seed in any::<u64>(),
        kpa in 1.0f64..100.0,
    ) {
        let (g, comps) = instance(n, seed);
        let sol = Synthesizer::paper_dcsa().synthesize(&g, &comps, &wash()).unwrap();
        let model = PressureDriven {
            pressure_kpa: kpa,
            ..PressureDriven::typical_pdms()
        };
        let audit = audit_transport_times(&sol, &model);
        prop_assert_eq!(audit.tasks.len(), sol.routing.paths.len());
        for t in &audit.tasks {
            prop_assert!(t.path_mm >= 0.0);
            prop_assert_eq!(t.budget, sol.schedule.t_c);
        }
        prop_assert_eq!(audit.is_sound(), audit.violations().count() == 0);
        // Higher pressure can only improve the worst ratio.
        let faster = PressureDriven { pressure_kpa: kpa * 2.0, ..model };
        let audit2 = audit_transport_times(&sol, &faster);
        prop_assert!(audit2.worst_ratio() <= audit.worst_ratio() + 1e-9);
    }

    #[test]
    fn area_report_is_sane(n in 2usize..18, seed in any::<u64>()) {
        let (g, comps) = instance(n, seed);
        let sol = Synthesizer::paper_dcsa().synthesize(&g, &comps, &wash()).unwrap();
        let report = area_report(&sol);
        prop_assert!(report.occupied_mm2 > 0.0);
        let f = report.savings_fraction();
        prop_assert!((0.0..1.0).contains(&f), "savings {}", f);
        if report.peak_cached_fluids == 0 {
            prop_assert_eq!(report.dedicated_storage_equivalent_mm2, 0.0);
        } else {
            prop_assert!(report.dedicated_storage_equivalent_mm2 > 0.0);
        }
    }

    #[test]
    fn event_log_matches_solution_structure(n in 2usize..18, seed in any::<u64>()) {
        let (g, comps) = instance(n, seed);
        let sol = Synthesizer::paper_dcsa().synthesize(&g, &comps, &wash()).unwrap();
        let log = mfb_sim::prelude::event_log(&sol.schedule, &sol.routing);
        // 2 events per op, 2 per transport, 2 per wash.
        let expected =
            2 * g.len() + 2 * sol.routing.paths.len() + 2 * sol.schedule.washes().len();
        prop_assert_eq!(log.len(), expected);
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }
}
