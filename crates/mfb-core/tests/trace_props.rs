//! Property-based observability tests: random synthetic assays always emit
//! **well-formed** traces — every span closes, durations are non-negative
//! and bounded by wall time, exports pass the schema checks — and the
//! `cache.<stage>.<hit|miss>` instants mirror the [`StageCache`]'s own
//! counters exactly.

#![cfg(feature = "obs-trace")]

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use proptest::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn instance(n: usize, seed: u64) -> (SequencingGraph, ComponentSet) {
    let g = SyntheticSpec::new(n, seed).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    (g, comps)
}

/// Count of `cache.<stage>.<outcome>` instants in `trace`.
fn cache_instants(trace: &mfb_obs::Trace, stage: &str, outcome: &str) -> u64 {
    trace.instant_count(&format!("cache.{stage}.{outcome}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every span closes, the event log passes both export schema checks,
    /// and stage spans sum to no more than the trace's wall time per
    /// nesting level (children are contained in `flow.synthesize`).
    #[test]
    fn random_assays_emit_well_formed_traces(
        n in 2usize..18,
        seed in any::<u64>(),
    ) {
        let (g, comps) = instance(n, seed);
        let collector = mfb_obs::TraceCollector::new();
        let result = {
            let _guard = mfb_obs::install(&collector);
            Synthesizer::paper_dcsa().synthesize(&g, &comps, &wash())
        };
        prop_assert!(result.is_ok(), "{result:?}");
        let trace = collector.finish();

        prop_assert_eq!(trace.open_spans, 0, "every span closes");
        prop_assert!(!trace.events.is_empty());
        mfb_obs::export::check_events(&trace.events).map_err(TestCaseError::fail)?;
        mfb_obs::export::check_jsonl(&mfb_obs::export::to_jsonl(&trace.events))
            .map_err(TestCaseError::fail)?;
        mfb_obs::export::check_chrome(&mfb_obs::export::to_chrome(&trace.events))
            .map_err(TestCaseError::fail)?;

        // Spans nest inside the wall clock: each span individually, and —
        // because same-thread stage spans at one nesting level run
        // back-to-back — the per-thread sum of `stage.*` spans fits inside
        // the enclosing `flow.synthesize` span. (Placement attempts can
        // fan out across threads, so the sum is per-tid, not global.)
        let root = trace.spans_named("flow.synthesize").next().expect("root span");
        prop_assert!(root.dur_ns <= trace.wall_ns);
        let mut per_tid: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for e in &trace.events {
            if e.kind == mfb_obs::EventKind::Span {
                prop_assert!(e.t_ns + e.dur_ns <= trace.wall_ns, "{} escapes wall time", e.name);
                if e.name.starts_with("stage.") {
                    *per_tid.entry(e.tid).or_default() += e.dur_ns;
                }
            }
        }
        for (tid, stage_sum) in per_tid {
            prop_assert!(
                stage_sum <= root.dur_ns,
                "tid {tid}: sequential stage spans ({stage_sum} ns) exceed flow.synthesize ({} ns)",
                root.dur_ns
            );
        }
    }

    /// The `cache.<stage>.<hit|miss>` instants in the trace agree with the
    /// [`StageCache`]'s own hit/miss counters, stage by stage, across a
    /// cold run followed by a warm re-run of the same assay.
    #[test]
    fn cache_instants_match_stage_cache_counters(
        n in 2usize..14,
        seed in any::<u64>(),
    ) {
        let (g, comps) = instance(n, seed);
        let cache = StageCache::new();
        let collector = mfb_obs::TraceCollector::new();
        {
            let _guard = mfb_obs::install(&collector);
            let cold = Synthesizer::paper_dcsa()
                .synthesize_cached(&g, &comps, &wash(), &cache);
            prop_assert!(cold.is_ok(), "{cold:?}");
            let warm = Synthesizer::paper_dcsa()
                .synthesize_cached(&g, &comps, &wash(), &cache);
            prop_assert!(warm.is_ok(), "{warm:?}");
        }
        let trace = collector.finish();
        let stats = cache.stats();

        for (stage, hits, misses) in [
            ("schedule", stats.schedule_hits, stats.schedule_misses),
            ("netlist", stats.netlist_hits, stats.netlist_misses),
            ("placement", stats.placement_hits, stats.placement_misses),
            ("routing", stats.routing_hits, stats.routing_misses),
            ("optimize", stats.optimize_hits, stats.optimize_misses),
        ] {
            prop_assert_eq!(
                cache_instants(&trace, stage, "hit"),
                hits,
                "{} hit instants vs CacheStats",
                stage
            );
            prop_assert_eq!(
                cache_instants(&trace, stage, "miss"),
                misses,
                "{} miss instants vs CacheStats",
                stage
            );
        }
        // The warm run hits at least the schedule stage.
        prop_assert!(stats.hits() > 0, "warm re-run must hit the cache");
    }
}
