//! Robustness suite: hostile inputs must produce structured errors (never
//! panics), defect-aware synthesis must provably avoid defects, and the
//! escalation ladder must recover failures the flat reseed loop cannot.

use mfb_bench_suite::{benchmark_by_name, synth::SyntheticSpec};
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_route::prelude::RouterConfig;
use mfb_verify::prelude::{RuleRegistry, VerifyInput};
use proptest::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

// ---------------------------------------------------------------- hostile

#[test]
fn zero_component_allocation_is_a_structured_error() {
    let g = SyntheticSpec::new(6, 3).generate();
    let comps = Allocation::new(0, 0, 0, 0).instantiate(&ComponentLibrary::default());
    let err = Synthesizer::paper_dcsa()
        .synthesize(&g, &comps, &wash())
        .unwrap_err();
    assert!(matches!(err, SynthesisError::Sched(_)), "{err}");
}

#[test]
fn one_by_one_grid_is_a_structured_error() {
    let g = SyntheticSpec::new(6, 3).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    let mut cfg = SynthesisConfig::paper_dcsa();
    cfg.grid = Some(GridSpec::new(1, 1, 10.0));
    let err = Synthesizer::new(cfg)
        .synthesize(&g, &comps, &wash())
        .unwrap_err();
    assert!(matches!(err, SynthesisError::Place(_)), "{err}");
}

#[test]
fn cyclic_assays_never_reach_the_synthesizer() {
    let mut b = SequencingGraph::builder();
    let d = DiffusionCoefficient::PROTEIN;
    let a = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
    let c = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
    b.edge(a, c).unwrap();
    b.edge(c, a).unwrap();
    assert!(b.build().is_err(), "a directed cycle must fail graph build");
}

#[test]
fn fully_blocked_defect_map_is_a_structured_error() {
    let g = SyntheticSpec::new(6, 3).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    let grid = GridSpec::square(20);
    let mut defects = DefectMap::pristine();
    for y in 0..grid.height {
        for x in 0..grid.width {
            defects.block_cell(CellPos::new(x, y));
        }
    }
    let mut cfg = SynthesisConfig::paper_dcsa();
    cfg.grid = Some(grid);
    let err = Synthesizer::new(cfg)
        .synthesize_with_defects(&g, &comps, &wash(), &defects)
        .unwrap_err();
    assert!(matches!(err, SynthesisError::Place(_)), "{err}");
}

// ------------------------------------------------------- ladder acceptance

/// The acceptance demonstration: a Table-I benchmark plus a defect map
/// that the flat reseed-only loop cannot synthesize, but the escalation
/// ladder recovers by growing the grid past the damaged region.
#[test]
fn ladder_recovers_a_table1_defect_combo_reseeding_cannot() {
    let b = benchmark_by_name("PCR").unwrap();
    let comps = b.components(&ComponentLibrary::default());
    let w = wash();
    let synth = Synthesizer::paper_dcsa();

    // Discover the auto grid, then declare every one of its cells dead —
    // the chip's whole original area is damaged, and only growth can add
    // pristine cells.
    let pristine = synth.synthesize(&b.graph, &comps, &w).unwrap();
    let grid = pristine.placement.grid();
    let mut defects = DefectMap::pristine();
    for y in 0..grid.height {
        for x in 0..grid.width {
            defects.block_cell(CellPos::new(x, y));
        }
    }

    // The flat loop dies on the deterministic placement error...
    let flat = synth.synthesize_with_defects(&b.graph, &comps, &w, &defects);
    assert!(matches!(flat, Err(SynthesisError::Place(_))));
    // ...reseeding alone cannot help...
    let reseed_only = synth.synthesize_resilient(
        &b.graph,
        &comps,
        &w,
        &defects,
        &RecoveryPolicy::reseed_only(16),
    );
    assert!(!reseed_only.is_success());
    // ...but the full ladder escalates to grid growth and succeeds.
    let out =
        synth.synthesize_resilient(&b.graph, &comps, &w, &defects, &RecoveryPolicy::standard());
    let sol = out
        .solution()
        .unwrap_or_else(|| panic!("ladder failed: {:?}\ntrace: {:#?}", out.result, out.trace));
    // The trace records failures only, so prove the escalation two ways:
    // the reseed rung failed exactly once (deterministic error, no budget
    // burnt), and the recovered chip is strictly larger than the damaged
    // one — only the grow-grid rung can do that.
    assert_eq!(out.trace.rungs_tried(), vec![Rung::Reseed]);
    let recovered = sol.placement.grid();
    assert!(
        recovered.width > grid.width && recovered.height > grid.height,
        "recovery must come from grid growth: {}x{} vs {}x{}",
        recovered.width,
        recovered.height,
        grid.width,
        grid.height
    );

    // The recovered solution is valid and provably defect-free, natively…
    assert!(sol.verify(&b.graph, &comps, &w).is_valid());
    assert_defect_free(sol, &defects);
    // …and via DRC-FAULT-001.
    assert_eq!(drc_fault_count(&b.graph, &comps, sol, &defects), 0);
}

// ---------------------------------------------------------------- helpers

fn assert_defect_free(sol: &Solution, defects: &DefectMap) {
    for p in &sol.routing.paths {
        for &c in &p.cells {
            assert!(!defects.is_blocked(c), "path crosses blocked cell {c}");
        }
    }
    for s in sol.schedule.ops() {
        assert!(
            !defects.is_dead(s.component),
            "{} bound to dead component {}",
            s.op,
            s.component
        );
    }
    for t in sol.schedule.transports() {
        assert!(!defects.is_dead(t.src) && !defects.is_dead(t.dst));
    }
}

fn drc_fault_count(
    graph: &SequencingGraph,
    comps: &ComponentSet,
    sol: &Solution,
    defects: &DefectMap,
) -> usize {
    let w = wash();
    let input = VerifyInput::new(
        graph,
        comps,
        &sol.schedule,
        &sol.placement,
        &sol.routing,
        &w,
        RouterConfig::paper(),
    )
    .with_defects(defects);
    RuleRegistry::with_all_rules()
        .run(&input)
        .diagnostics
        .iter()
        .filter(|d| d.rule == "DRC-FAULT-001")
        .count()
}

// ------------------------------------------------------------- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `synthesize` (defect-aware or not) never panics on generated
    /// (assay, allocation, defect-map) triples — every failure is a typed
    /// `SynthesisError`. Proptest itself fails the case on any panic.
    #[test]
    fn synthesis_never_panics_on_generated_triples(
        n in 2usize..14,
        assay_seed in any::<u64>(),
        defect_seed in any::<u64>(),
        mixers in 0u32..3,
        heaters in 0u32..3,
        filters in 0u32..2,
        detectors in 0u32..2,
        cell_p in 0.0f64..0.15,
        comp_p in 0.0f64..0.5,
    ) {
        let g = SyntheticSpec::new(n, assay_seed).generate();
        let comps = Allocation::new(mixers, heaters, filters, detectors)
            .instantiate(&ComponentLibrary::default());
        let grid = GridSpec::square(28);
        let defects = DefectMap::sample(grid, &comps, cell_p, comp_p, defect_seed);
        let mut cfg = SynthesisConfig::paper_dcsa();
        cfg.grid = Some(grid);
        cfg.max_placement_attempts = 4;
        let _ = Synthesizer::new(cfg).synthesize_with_defects(&g, &comps, &wash(), &defects);
    }

    /// Whenever synthesis under a seeded defect map succeeds, the solution
    /// touches no defect: no routed cell is blocked and no binding uses a
    /// dead component — checked natively and through DRC-FAULT-001.
    #[test]
    fn successful_synthesis_avoids_all_defects(
        n in 2usize..14,
        assay_seed in any::<u64>(),
        defect_seed in any::<u64>(),
        cell_p in 0.0f64..0.08,
        comp_p in 0.0f64..0.3,
    ) {
        let g = SyntheticSpec::new(n, assay_seed).generate();
        let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
        let grid = GridSpec::square(32);
        let defects = DefectMap::sample(grid, &comps, cell_p, comp_p, defect_seed);
        let mut cfg = SynthesisConfig::paper_dcsa();
        cfg.grid = Some(grid);
        if let Ok(sol) =
            Synthesizer::new(cfg).synthesize_with_defects(&g, &comps, &wash(), &defects)
        {
            // Native checks.
            for p in &sol.routing.paths {
                for &c in &p.cells {
                    prop_assert!(!defects.is_blocked(c), "path crosses blocked {c}");
                }
            }
            for s in sol.schedule.ops() {
                prop_assert!(!defects.is_dead(s.component));
            }
            for t in sol.schedule.transports() {
                prop_assert!(!defects.is_dead(t.src) && !defects.is_dead(t.dst));
            }
            // And the DRC agrees.
            prop_assert_eq!(drc_fault_count(&g, &comps, &sol, &defects), 0);
            // The solution is also independently valid.
            let report = sol.verify(&g, &comps, &wash());
            prop_assert!(report.is_valid(), "{:?}", report.violations);
        }
    }

    /// The resilient driver is deterministic: same inputs, same policy,
    /// same outcome and same trace.
    #[test]
    fn resilient_driver_is_deterministic(
        n in 2usize..10,
        assay_seed in any::<u64>(),
        defect_seed in any::<u64>(),
    ) {
        let g = SyntheticSpec::new(n, assay_seed).generate();
        let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
        let grid = GridSpec::square(30);
        let defects = DefectMap::sample(grid, &comps, 0.03, 0.2, defect_seed);
        let mut cfg = SynthesisConfig::paper_dcsa();
        cfg.grid = Some(grid);
        let synth = Synthesizer::new(cfg);
        let a = synth.synthesize_resilient(&g, &comps, &wash(), &defects, &RecoveryPolicy::standard());
        let b = synth.synthesize_resilient(&g, &comps, &wash(), &defects, &RecoveryPolicy::standard());
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.is_success(), b.is_success());
        if let (Some(sa), Some(sb)) = (a.solution(), b.solution()) {
            prop_assert_eq!(&sa.placement, &sb.placement);
            prop_assert_eq!(&sa.routing, &sb.routing);
        }
    }
}
