use mfb_bench_suite::table1_benchmarks;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn main() {
    let wash = LogLinearWash::paper_calibrated();
    let lib = ComponentLibrary::default();
    let mut rows = Vec::new();
    for b in table1_benchmarks() {
        match ComparisonRow::compare(b.name, &b.graph, b.allocation, &lib, &wash) {
            Ok(r) => rows.push(r),
            Err(e) => println!("{}: ERROR {e}", b.name),
        }
    }
    print!("{}", table1_text(&rows));
    println!();
    print!("{}", fig8_text(&rows));
    println!();
    print!("{}", fig9_text(&rows));
}
