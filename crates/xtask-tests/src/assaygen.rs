//! Seeded grammar-based generation of `.assay` programs for fuzzing.
//!
//! Two generators, both deterministic functions of a `u64` seed:
//!
//! * [`valid_assay`] emits a program the v1 grammar accepts: the parser
//!   must return `Ok` and the rest of the pipeline (lower → synthesize →
//!   verify → DRC) must never panic on it;
//! * [`mutated_assay`] starts from a valid program and applies a burst of
//!   grammar-aware mutations — token swaps, number perturbation, line
//!   splices, quote breaking, raw byte garbage. The parser may accept or
//!   reject the result, but it must do one or the other *with a typed,
//!   positioned error* and never panic.
//!
//! Randomness is a hand-rolled splitmix64 so the generator needs no
//! external crates and a printed seed reproduces a failure exactly.

/// splitmix64: tiny, fast, and plenty for fuzz-case shaping.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator. Seed 0 is remapped so the stream never sticks.
    pub fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Picks one of a set of string literals (monomorphic so call sites
    /// need no deref dance).
    pub fn choose_str<'a>(&mut self, items: &[&'a str]) -> &'a str {
        items[self.below(items.len() as u64) as usize]
    }
}

const KINDS: &[&str] = &["mix", "heat", "filter", "detect"];

/// Shape limits for generated programs, chosen so a full synthesis run per
/// case stays fast enough for a 60-second CI smoke.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Largest op count (inclusive); at least 1.
    pub max_ops: u64,
    /// Emit `flow` statements.
    pub with_flow: bool,
    /// Emit `defect` statements.
    pub with_defects: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            max_ops: 6,
            with_flow: true,
            with_defects: true,
        }
    }
}

/// A grammatically valid v1 program. The op set always includes at least
/// one op, every edge points forward (no cycles), and the `alloc` line
/// covers every kind used, so lowering succeeds and synthesis has the
/// components it needs.
pub fn valid_assay(seed: u64, opts: &GenOptions) -> String {
    let mut rng = Rng::new(seed);
    let n = 1 + rng.below(opts.max_ops.max(1));
    let mut s = String::from("assay-dsl 1\n");
    if rng.chance(3, 4) {
        s.push_str(&format!("assay \"fuzz-{}\"\n", rng.below(1 << 20)));
    }

    let mut used = [false; 4];
    for i in 0..n {
        let k = rng.below(4) as usize;
        used[k] = true;
        let dur = 1 + rng.below(20);
        // wash= on the tick lattice inside the 10 s clamp, or a plausible
        // diffusion coefficient.
        let fluid = if rng.chance(1, 2) {
            format!("wash={}s", rng.below(101) as f64 / 10.0)
        } else {
            format!("d=1e-{}", 5 + rng.below(4))
        };
        s.push_str(&format!("op o{i} {} {dur}s {fluid}\n", KINDS[k]));
    }

    // A forward spine keeps the DAG connected; extras stay forward too.
    for i in 1..n {
        s.push_str(&format!("edge o{} -> o{i}\n", i - 1));
    }
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.below(n + 1) {
        let i = rng.below(n);
        let j = rng.below(n);
        if i + 1 < j && seen.insert((i, j)) {
            s.push_str(&format!("edge o{i} -> o{j}\n"));
        }
    }

    if opts.with_flow && rng.chance(1, 2) {
        let mut line = String::from("flow");
        if rng.chance(2, 3) {
            line.push(' ');
            line.push_str(rng.choose_str(&["dcsa", "ours", "baseline", "ba"]));
        }
        if rng.chance(1, 2) {
            line.push_str(&format!(" t_c={}s", 1 + rng.below(6)));
        }
        if rng.chance(1, 2) {
            line.push_str(&format!(" seed={}", rng.below(1 << 30)));
        }
        if line != "flow" {
            s.push_str(&line);
            s.push('\n');
        }
    }

    if opts.with_defects && rng.chance(1, 3) {
        for _ in 0..=rng.below(3) {
            match rng.below(3) {
                0 => s.push_str(&format!(
                    "defect block {} {}\n",
                    rng.below(25),
                    rng.below(25)
                )),
                1 => s.push_str(&format!("defect dead {}\n", rng.below(6))),
                _ => s.push_str(&format!(
                    "defect slow {} {} {}\n",
                    rng.below(25),
                    rng.below(25),
                    1 + rng.below(8)
                )),
            }
        }
    }

    // Cover every kind used, with occasional slack capacity.
    let extra = |rng: &mut Rng| rng.below(2);
    s.push_str(&format!(
        "alloc {} {} {} {}\n",
        (used[0] as u64).max(1) + extra(&mut rng),
        used[1] as u64 + extra(&mut rng),
        used[2] as u64 + extra(&mut rng),
        used[3] as u64 + extra(&mut rng),
    ));
    s
}

/// A mutated program: [`valid_assay`] plus 1..=4 grammar-aware edits.
/// The result may or may not parse; it must never panic the pipeline.
pub fn mutated_assay(seed: u64, opts: &GenOptions) -> String {
    let mut rng = Rng::new(seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    let mut text = valid_assay(seed, opts);
    for _ in 0..=rng.below(4) {
        text = mutate_once(&mut rng, text);
    }
    text
}

fn mutate_once(rng: &mut Rng, text: String) -> String {
    match rng.below(10) {
        // Swap a line for a line of another statement kind.
        0 => splice_line(rng, text, |rng| {
            rng.choose_str(&[
                "op o0 mix 5s wash=2s",
                "edge o0 -> o0",
                "edge o0 -> nosuch",
                "flow dcsa dcsa",
                "alloc 1 1 1 1",
                "assay-dsl 2",
                "defect block -1 4",
            ])
            .to_string()
        }),
        // Perturb a number: negative, enormous, non-finite, fractional junk.
        1 => replace_first_number(
            text,
            rng.choose_str(&[
                "-3",
                "1e309",
                "NaN",
                "inf",
                "0",
                "999999999999",
                "1.5e-3000",
            ]),
        ),
        // Drop a random line.
        2 => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return text;
            }
            let drop = rng.below(lines.len() as u64) as usize;
            let mut out: Vec<&str> = Vec::new();
            for (i, l) in lines.iter().enumerate() {
                if i != drop {
                    out.push(l);
                }
            }
            out.join("\n")
        }
        // Duplicate a random line (dup ops/edges/alloc are all typed errors).
        3 => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return text;
            }
            let dup = rng.below(lines.len() as u64) as usize;
            let mut out: Vec<&str> = Vec::new();
            for (i, l) in lines.iter().enumerate() {
                out.push(l);
                if i == dup {
                    out.push(l);
                }
            }
            out.join("\n")
        }
        // Truncate mid-byte.
        4 => {
            if text.is_empty() {
                return text;
            }
            let mut cut = rng.below(text.len() as u64) as usize;
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_string()
        }
        // Break quoting.
        5 => text.replacen('"', "", 1),
        // Shuffle arrow tokens.
        6 => text.replacen("->", rng.choose_str(&["<-", "- >", "->->", ""]), 1),
        // Inject raw garbage bytes (still valid UTF-8: the parser takes &str).
        7 => {
            let mut garbage = String::new();
            for _ in 0..rng.below(12) {
                garbage.push(char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('?'));
            }
            format!("{text}\n{garbage}")
        }
        // Swap two whitespace-separated tokens on one line.
        8 => {
            let lines: Vec<String> = text.lines().map(str::to_string).collect();
            if lines.is_empty() {
                return text;
            }
            let idx = rng.below(lines.len() as u64) as usize;
            let mut toks: Vec<&str> = lines[idx].split_whitespace().collect();
            if toks.len() >= 2 {
                let a = rng.below(toks.len() as u64) as usize;
                let b = rng.below(toks.len() as u64) as usize;
                toks.swap(a, b);
            }
            let mut out = lines.clone();
            out[idx] = toks.join(" ");
            out.join("\n")
        }
        // Prepend a bogus or duplicate version pragma.
        _ => format!(
            "{}\n{text}",
            rng.choose_str(&["assay-dsl 1", "assay-dsl 0", "assay-dsl one"])
        ),
    }
}

fn splice_line(rng: &mut Rng, text: String, make: impl Fn(&mut Rng) -> String) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let at = if lines.is_empty() {
        0
    } else {
        rng.below(lines.len() as u64 + 1) as usize
    };
    lines.insert(at, make(rng));
    lines.join("\n")
}

fn replace_first_number(text: String, with: &str) -> String {
    let Some(start) = text.find(|c: char| c.is_ascii_digit()) else {
        return text;
    };
    let end = text[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == 'e' || c == '-'))
        .map_or(text.len(), |o| start + o);
    format!("{}{}{}", &text[..start], with, &text[end..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_assays_parse() {
        let opts = GenOptions::default();
        for seed in 0..200 {
            let text = valid_assay(seed, &opts);
            mfb_model::text::parse_assay(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n---\n{text}"));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let opts = GenOptions::default();
        assert_eq!(valid_assay(42, &opts), valid_assay(42, &opts));
        assert_eq!(mutated_assay(42, &opts), mutated_assay(42, &opts));
    }

    #[test]
    fn mutated_assays_never_panic_the_parser() {
        let opts = GenOptions::default();
        for seed in 0..500 {
            let text = mutated_assay(seed, &opts);
            if let Err(e) = mfb_model::text::parse_assay(&text) {
                assert!(e.line() >= 1, "seed {seed}");
                assert!(e.column() >= 1, "seed {seed}");
            }
        }
    }
}
