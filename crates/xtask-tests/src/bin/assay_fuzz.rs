//! Grammar-based fuzzer for the assay pipeline: parse → lower →
//! synthesize → verify → DRC, under `catch_unwind`.
//!
//! The contract being enforced:
//!
//! * the parser NEVER panics — every rejection is a typed [`ParseError`]
//!   carrying a 1-based line and column;
//! * every ACCEPTED program flows through the whole pipeline without a
//!   panic, and when synthesis succeeds the solution replays valid and
//!   passes DRC (or synthesis fails with a typed error);
//!
//! Usage:
//!
//! ```text
//! assay_fuzz [--seconds N] [--cases N] [--seed S] [--crash-dir DIR]
//! ```
//!
//! With `--seconds` the run is wall-clock bounded (CI smoke); otherwise
//! it executes exactly `--cases` cases (default 500). Every failure
//! prints the case seed (re-run with `--seed` to reproduce) and writes
//! the offending program into `--crash-dir` before exiting non-zero.

use mfb_core::prelude::*;
use mfb_model::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration as WallDuration, Instant};
use xtask_tests::assaygen::{mutated_assay, valid_assay, GenOptions};

struct Args {
    seconds: Option<u64>,
    cases: u64,
    seed: u64,
    crash_dir: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seconds: None,
        cases: 500,
        seed: 0xA55A_F002,
        crash_dir: std::path::PathBuf::from("target/assay-fuzz-crashes"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--seconds" => {
                args.seconds = Some(
                    value("--seconds")?
                        .parse()
                        .map_err(|e| format!("--seconds: {e}"))?,
                )
            }
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--crash-dir" => args.crash_dir = value("--crash-dir")?.into(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// The synthesis config an accepted file asks for (mirrors the CLI's
/// flag-free path: file `flow` statement, then the DCSA default).
fn config_for(file: &AssayFile) -> SynthesisConfig {
    let mut config = match file.flow.kind {
        Some(FlowKind::Baseline) => SynthesisConfig::paper_baseline(),
        _ => SynthesisConfig::paper_dcsa(),
    };
    if let Some(t_c) = file.flow.t_c {
        config.t_c = t_c;
    }
    if let Some(seed) = file.flow.seed {
        config = config.with_seed(seed);
    }
    config
}

/// Runs one generated program through the pipeline. Returns an error
/// message when a *property* fails (an un-positioned error, an invalid
/// accepted solution); panics propagate to the caller's `catch_unwind`.
fn run_case(text: &str) -> Result<(), String> {
    let file = match parse_assay(text) {
        Err(e) => {
            if e.line() == 0 || e.column() == 0 {
                return Err(format!("error without a 1-based position: {e}"));
            }
            return Ok(());
        }
        Ok(f) => f,
    };
    let Some(allocation) = file.allocation else {
        return Ok(()); // accepted, but not synthesizable without components
    };
    let comps = allocation.instantiate(&ComponentLibrary::default());
    let wash = LogLinearWash::paper_calibrated();
    let synth = Synthesizer::new(config_for(&file));
    let router = synth.config().router;
    match synth.synthesize_with_defects(&file.graph, &comps, &wash, &file.defects) {
        Err(_) => Ok(()), // typed synthesis error: acceptable outcome
        Ok(solution) => {
            let sim = solution.verify(&file.graph, &comps, &wash);
            if !sim.is_valid() {
                return Err(format!("accepted program replayed invalid: {sim:?}"));
            }
            let drc = solution.drc_with(
                &file.graph,
                &comps,
                &wash,
                router,
                &RuleRegistry::with_all_rules(),
            );
            if !drc.is_clean() {
                return Err(format!(
                    "accepted program failed DRC: {} finding(s)",
                    drc.diagnostics.len()
                ));
            }
            Ok(())
        }
    }
}

fn main() -> std::process::ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("assay_fuzz: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };

    let opts = GenOptions::default();
    let deadline = args
        .seconds
        .map(|s| Instant::now() + WallDuration::from_secs(s));
    let mut case = 0u64;
    let mut failures = 0u64;
    let started = Instant::now();

    loop {
        match deadline {
            Some(d) => {
                if Instant::now() >= d {
                    break;
                }
            }
            None => {
                if case >= args.cases {
                    break;
                }
            }
        }
        let seed = args.seed.wrapping_add(case);
        // One third valid programs (exercise the deep pipeline), two
        // thirds mutated (exercise the parser's error paths).
        let text = if case % 3 == 0 {
            valid_assay(seed, &opts)
        } else {
            mutated_assay(seed, &opts)
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| run_case(&text)));
        let problem = match outcome {
            Ok(Ok(())) => None,
            Ok(Err(msg)) => Some(msg),
            Err(_) => Some("pipeline panicked".to_owned()),
        };
        if let Some(msg) = problem {
            failures += 1;
            eprintln!("assay_fuzz: FAILURE at seed {seed}: {msg}");
            eprintln!("  reproduce with: assay_fuzz --cases 1 --seed {seed}");
            if std::fs::create_dir_all(&args.crash_dir).is_ok() {
                let path = args.crash_dir.join(format!("crash-{seed}.assay"));
                if std::fs::write(&path, &text).is_ok() {
                    eprintln!("  input written to {}", path.display());
                }
            }
        }
        case += 1;
    }

    let secs = started.elapsed().as_secs_f64();
    println!(
        "assay_fuzz: {case} case(s) in {secs:.1}s ({:.0}/s), {failures} failure(s), base seed {}",
        case as f64 / secs.max(1e-9),
        args.seed
    );
    if failures == 0 {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
