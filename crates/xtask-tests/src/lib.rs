//! Carrier crate: exists only so the workspace-level integration tests in
//! `/tests` are compiled and run by `cargo test --workspace`.
