//! Carrier crate: exists only so the workspace-level integration tests in
//! `/tests` are compiled and run by `cargo test --workspace` — plus the
//! seeded grammar-based assay generator behind the `assay_fuzz` binary
//! and the bounded fuzz test in `/tests/assay_pipeline_fuzz.rs`.

pub mod assaygen;
