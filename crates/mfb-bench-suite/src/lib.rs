//! Benchmark bioassays for DCSA flow-layer physical synthesis.
//!
//! The paper evaluates on three real-life assays — **PCR** (polymerase chain
//! reaction, 7 operations), **IVD** (in-vitro diagnostics, 12 operations) and
//! **CPA** (colorimetric protein assay, 55 operations) — plus four synthetic
//! assays of 20/30/40/50 operations, with the component allocations listed in
//! Table I. The original benchmark files (inherited from Liu et al., DAC'17)
//! were never published, so this crate *reconstructs* them:
//!
//! * the real-life assays follow their well-known published structure
//!   (mixing trees, mix-then-detect chains, serial dilution ladders);
//! * the synthetic assays come from a **seeded** layered-DAG generator
//!   ([`synth`]) configured to the paper's operation counts and allocation
//!   vectors, so every run of the suite sees bit-identical workloads.
//!
//! Entry points: [`table1_benchmarks`] returns the seven Table-I workloads in
//! paper order; [`motivating_example`] returns the Fig. 2(a) running example
//! used throughout the paper's exposition.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod assays;
pub mod families;
pub mod synth;

use mfb_model::prelude::*;

/// A named synthesis workload: the sequencing graph plus the component
/// allocation the paper pairs it with.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name as it appears in Table I (`"PCR"`, `"Synthetic3"`, …).
    pub name: &'static str,
    /// The bioassay.
    pub graph: SequencingGraph,
    /// Allocated components, Table I column 3.
    pub allocation: Allocation,
}

impl Benchmark {
    /// Instantiates the allocation against `library` and checks it covers
    /// every operation kind the assay uses.
    pub fn components(&self, library: &ComponentLibrary) -> ComponentSet {
        let set = self.allocation.instantiate(library);
        debug_assert!(
            set.covers(self.graph.ops().map(|o| o.kind())),
            "allocation {} does not cover benchmark {}",
            self.allocation,
            self.name
        );
        set
    }
}

/// The seven benchmarks of the paper's Table I, in row order.
pub fn table1_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "PCR",
            graph: assays::pcr(),
            allocation: Allocation::new(3, 0, 0, 0),
        },
        Benchmark {
            name: "IVD",
            graph: assays::ivd(),
            allocation: Allocation::new(3, 0, 0, 2),
        },
        Benchmark {
            name: "CPA",
            graph: assays::cpa(),
            allocation: Allocation::new(8, 0, 0, 2),
        },
        Benchmark {
            name: "Synthetic1",
            graph: synth::table1_synthetic(1),
            allocation: Allocation::new(3, 3, 2, 1),
        },
        Benchmark {
            name: "Synthetic2",
            graph: synth::table1_synthetic(2),
            allocation: Allocation::new(5, 2, 2, 2),
        },
        Benchmark {
            name: "Synthetic3",
            graph: synth::table1_synthetic(3),
            allocation: Allocation::new(6, 4, 4, 2),
        },
        Benchmark {
            name: "Synthetic4",
            graph: synth::table1_synthetic(4),
            allocation: Allocation::new(7, 4, 4, 3),
        },
    ]
}

/// The dense stress workload **Synthetic5**: 100 operations on a
/// 10/5/5/4 allocation — twice the paper's largest rung. Deliberately not
/// part of [`table1_benchmarks`] (Table I stops at 50 operations); `mfb
/// bench` runs it as a separate congestion axis where the negotiated
/// router's routability matters.
pub fn dense_benchmark() -> Benchmark {
    Benchmark {
        name: "Synthetic5",
        graph: synth::synthetic5(),
        allocation: Allocation::new(10, 5, 5, 4),
    }
}

/// The benchmark with the given name, if any (case-insensitive;
/// `"synth3"` is accepted for `"Synthetic3"`). Resolves the seven Table-I
/// workloads plus the dense [`dense_benchmark`] rung `"Synthetic5"`.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    let needle = name.to_ascii_lowercase();
    table1_benchmarks()
        .into_iter()
        .chain(std::iter::once(dense_benchmark()))
        .find(|b| {
            let full = b.name.to_ascii_lowercase();
            full == needle || full.replace("synthetic", "synth") == needle
        })
}

/// The Fig. 2(a) running example: a 10-operation assay on five components
/// (3 mixers, 1 heater, 1 detector).
///
/// The reconstruction preserves the paper's two stated facts: with
/// `t_c = 2 s` the priority value of `o1` is 21 s along the path
/// `o1 → o5 → o7 → o10 → sink`, and the assay fits five components.
pub fn motivating_example() -> Benchmark {
    Benchmark {
        name: "Fig2a",
        graph: assays::motivating(),
        allocation: Allocation::new(3, 1, 0, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_op_counts() {
        let expected = [
            ("PCR", 7usize),
            ("IVD", 12),
            ("CPA", 55),
            ("Synthetic1", 20),
            ("Synthetic2", 30),
            ("Synthetic3", 40),
            ("Synthetic4", 50),
        ];
        let benches = table1_benchmarks();
        assert_eq!(benches.len(), expected.len());
        for (b, (name, ops)) in benches.iter().zip(expected) {
            assert_eq!(b.name, name);
            assert_eq!(b.graph.len(), ops, "op count mismatch for {name}");
        }
    }

    #[test]
    fn allocations_match_table1() {
        let expected = [
            Allocation::new(3, 0, 0, 0),
            Allocation::new(3, 0, 0, 2),
            Allocation::new(8, 0, 0, 2),
            Allocation::new(3, 3, 2, 1),
            Allocation::new(5, 2, 2, 2),
            Allocation::new(6, 4, 4, 2),
            Allocation::new(7, 4, 4, 3),
        ];
        for (b, a) in table1_benchmarks().iter().zip(expected) {
            assert_eq!(b.allocation, a, "allocation mismatch for {}", b.name);
        }
    }

    #[test]
    fn every_allocation_covers_its_assay() {
        let lib = ComponentLibrary::default();
        for b in table1_benchmarks() {
            let set = b.allocation.instantiate(&lib);
            assert!(
                set.covers(b.graph.ops().map(|o| o.kind())),
                "{} allocation does not cover its operations",
                b.name
            );
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let a = table1_benchmarks();
        let b = table1_benchmarks();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph, "benchmark {} not deterministic", x.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(benchmark_by_name("pcr").unwrap().name, "PCR");
        assert_eq!(benchmark_by_name("Synthetic2").unwrap().name, "Synthetic2");
        assert_eq!(benchmark_by_name("synth4").unwrap().name, "Synthetic4");
        assert_eq!(benchmark_by_name("synth5").unwrap().name, "Synthetic5");
        assert!(benchmark_by_name("nope").is_none());
    }

    #[test]
    fn dense_benchmark_covers_its_assay_and_stays_out_of_table1() {
        let b = dense_benchmark();
        assert_eq!(b.graph.len(), 100);
        let set = b.allocation.instantiate(&ComponentLibrary::default());
        assert!(set.covers(b.graph.ops().map(|o| o.kind())));
        assert!(table1_benchmarks().iter().all(|t| t.name != b.name));
    }

    #[test]
    fn motivating_example_priority_is_21() {
        let b = motivating_example();
        let prio = b.graph.priority_values(Duration::from_secs(2));
        // o1 is the first operation (index 0 in our reconstruction).
        assert_eq!(prio[0], Duration::from_secs(21));
        assert_eq!(b.allocation.total(), 5);
    }
}
