//! Seeded synthetic bioassay generator.
//!
//! The paper's four synthetic benchmarks (20/30/40/50 operations) come from
//! an unpublished generator, so we rebuild one: a layered random DAG
//! generator in the style used throughout the high-level-synthesis
//! literature. Everything is driven by an explicit seed, so a given
//! [`SyntheticSpec`] always produces the same graph — benchmarks are data,
//! not randomness.
//!
//! Structure produced:
//!
//! * operations are spread over `depth` layers; layer 0 operations are
//!   sources (fed from chip inlets), every later operation draws one or two
//!   parents from earlier layers (biased towards the previous layer, which
//!   yields the long dependency chains that make scheduling interesting);
//! * mix operations take two parents where possible, others take one;
//! * detect operations are confined to the final third of the layers
//!   (detection concludes an assay, it does not feed reactions);
//! * operation kinds are drawn with probabilities proportional to the
//!   benchmark's component allocation, so every allocated component kind
//!   sees work;
//! * execution times and wash times are drawn uniformly from per-kind
//!   ranges representative of the literature (mix 3–6 s, heat 2–4 s,
//!   filter 3–5 s, detect 3–5 s; wash 0.2–10 s log-uniform in the diffusion
//!   coefficient).

use mfb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic bioassay. Construct with [`SyntheticSpec::new`],
/// customise with the builder-style setters, then call
/// [`generate`](SyntheticSpec::generate).
///
/// # Examples
///
/// ```
/// use mfb_bench_suite::synth::SyntheticSpec;
///
/// let g = SyntheticSpec::new(25, 42).generate();
/// assert_eq!(g.len(), 25);
/// // Same spec, same graph:
/// assert_eq!(g, SyntheticSpec::new(25, 42).generate());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    ops: usize,
    seed: u64,
    depth: usize,
    kind_weights: [u32; 4],
    name: String,
}

impl SyntheticSpec {
    /// A spec for `ops` operations with the given seed and defaults:
    /// depth `clamp(ops / 4, 4, 12)`, kind weights `(4, 2, 2, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is zero.
    pub fn new(ops: usize, seed: u64) -> Self {
        assert!(ops > 0, "a bioassay needs at least one operation");
        SyntheticSpec {
            ops,
            seed,
            depth: (ops / 4).clamp(4, 12).min(ops),
            kind_weights: [4, 2, 2, 1],
            name: format!("synthetic-{ops}-{seed:#x}"),
        }
    }

    /// Sets the number of layers (the depth of the DAG).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds the operation count.
    pub fn depth(mut self, depth: usize) -> Self {
        assert!(depth > 0 && depth <= self.ops, "depth must be in 1..=ops");
        self.depth = depth;
        self
    }

    /// Sets the relative frequency of (mix, heat, filter, detect) operations.
    /// A zero weight bans the kind entirely. Typically derived from the
    /// component allocation so every allocated component kind sees work.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero.
    pub fn kind_weights(mut self, weights: [u32; 4]) -> Self {
        assert!(
            weights.iter().any(|&w| w > 0),
            "at least one kind weight must be positive"
        );
        self.kind_weights = weights;
        self
    }

    /// Sets the graph name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Generates the bioassay. Deterministic in the spec.
    pub fn generate(&self) -> SequencingGraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let wash_model = LogLinearWash::paper_calibrated();

        // Assign each operation to a layer: every layer gets at least one
        // operation, the rest are spread at random.
        let mut layer_of = vec![0usize; self.ops];
        for (i, slot) in layer_of.iter_mut().enumerate().take(self.depth) {
            *slot = i;
        }
        for slot in layer_of.iter_mut().skip(self.depth) {
            *slot = rng.gen_range(0..self.depth);
        }
        layer_of.sort_unstable();

        // Draw a kind for each operation. Detects only in the last third.
        let detect_from_layer = self.depth.saturating_sub(self.depth / 3).max(1);
        let kinds: Vec<OperationKind> = layer_of
            .iter()
            .map(|&layer| loop {
                let k = self.draw_kind(&mut rng);
                if k != OperationKind::Detect || layer >= detect_from_layer {
                    break k;
                }
            })
            .collect();

        let mut b = SequencingGraph::builder();
        b.name(self.name.clone());
        let ids: Vec<OpId> = kinds
            .iter()
            .map(|&k| {
                let dur = Duration::from_secs(match k {
                    OperationKind::Mix => rng.gen_range(3..=6),
                    OperationKind::Heat => rng.gen_range(2..=4),
                    OperationKind::Filter => rng.gen_range(3..=5),
                    OperationKind::Detect => rng.gen_range(3..=5),
                });
                // Log-uniform diffusion over the wash range 0.2 s … 10 s.
                let wash_secs = rng.gen_range(0.2f64..=10.0f64);
                let d = wash_model.coefficient_for(Duration::from_secs_f64(wash_secs));
                b.operation(k, dur, d)
            })
            .collect();

        // Wire parents: ops in layer 0 are sources; later ops take parents
        // from earlier layers, biased to the immediately preceding layer.
        for i in 0..self.ops {
            let layer = layer_of[i];
            if layer == 0 {
                continue;
            }
            let fan_in = if kinds[i] == OperationKind::Mix { 2 } else { 1 };
            for _ in 0..fan_in {
                // 75%: previous layer; 25%: any earlier layer.
                let parent_layer = if layer == 1 || rng.gen_bool(0.75) {
                    layer - 1
                } else {
                    rng.gen_range(0..layer - 1)
                };
                let lo = layer_of.partition_point(|&l| l < parent_layer);
                let hi = layer_of.partition_point(|&l| l <= parent_layer);
                debug_assert!(lo < hi, "every layer is populated");
                // Detection concludes an assay: avoid detect parents
                // (fall back after a few tries if the layer is all detects).
                let mut parent = rng.gen_range(lo..hi);
                for _ in 0..8 {
                    if kinds[parent] != OperationKind::Detect {
                        break;
                    }
                    parent = rng.gen_range(lo..hi);
                }
                // Duplicate edges are rejected by the builder; skip quietly.
                let _ = b.edge(ids[parent], ids[i]);
            }
        }

        b.build()
            .expect("layered construction cannot create cycles")
    }

    fn draw_kind(&self, rng: &mut StdRng) -> OperationKind {
        let total: u32 = self.kind_weights.iter().sum();
        let mut roll = rng.gen_range(0..total);
        for (k, &w) in OperationKind::ALL.iter().zip(&self.kind_weights) {
            if roll < w {
                return *k;
            }
            roll -= w;
        }
        unreachable!("weights sum covers the roll")
    }
}

/// The paper's synthetic benchmark `index` (1–4): 20/30/40/50 operations,
/// kind mix matching the Table-I allocations `(3,3,2,1)`, `(5,2,2,2)`,
/// `(6,4,4,2)`, `(7,4,4,3)`.
///
/// # Panics
///
/// Panics if `index` is not in `1..=4`.
pub fn table1_synthetic(index: u32) -> SequencingGraph {
    let (ops, weights) = match index {
        1 => (20, [3, 3, 2, 1]),
        2 => (30, [5, 2, 2, 2]),
        3 => (40, [6, 4, 4, 2]),
        4 => (50, [7, 4, 4, 3]),
        _ => panic!("synthetic benchmark index must be 1..=4, got {index}"),
    };
    SyntheticSpec::new(ops, 0x5EF1_0000 + u64::from(index))
        .kind_weights(weights)
        .name(format!("Synthetic{index}"))
        .generate()
}

/// The dense stress assay **Synthetic5**: 100 operations, twice the paper's
/// largest workload. Not part of Table I — it extends the suite so routers
/// can be compared on a rung where channel congestion actually bites (the
/// negotiated router proves its routability there). Seeded like its Table-I
/// siblings, so every run sees the identical graph.
///
/// The depth is pinned at 19 layers: shallower DAGs pack so much
/// per-layer concurrency (and deeper ones so much cross-layer channel
/// storage) that no grid size routes them — the congestion sits on the
/// fixed-size component access rings, which area growth cannot widen.
/// At depth 19 the assay needs two 4/3 grid-growth steps before the
/// serial router succeeds, which is exactly the hard-but-routable band
/// the congestion axis wants.
pub fn synthetic5() -> SequencingGraph {
    SyntheticSpec::new(100, 0x5EF1_0005)
        .depth(19)
        .kind_weights([10, 5, 5, 4])
        .name("Synthetic5")
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        for n in [1, 2, 5, 17, 50] {
            let g = SyntheticSpec::new(n, 7).generate();
            assert_eq!(g.len(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticSpec::new(30, 1).generate();
        let b = SyntheticSpec::new(30, 1).generate();
        assert_eq!(a, b);
        let c = SyntheticSpec::new(30, 2).generate();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn sources_exactly_layer_zero() {
        let g = SyntheticSpec::new(40, 3).generate();
        assert!(g.sources().count() >= 1);
        // All non-source ops have at least one parent by construction.
        for o in g.op_ids() {
            if g.parents(o).is_empty() {
                assert!(g.children(o).len() + 1 >= 1); // a source; trivially fine
            }
        }
    }

    #[test]
    fn respects_kind_ban() {
        let g = SyntheticSpec::new(25, 11)
            .kind_weights([1, 0, 0, 0])
            .generate();
        assert!(g.ops().all(|o| o.kind() == OperationKind::Mix));
    }

    #[test]
    fn detects_rarely_feed_operations() {
        // Parent selection retries away from detect parents; only a layer
        // made exclusively of detects can force one. Across the four
        // Table-I benchmarks that should essentially never happen.
        let mut detect_children = 0;
        for idx in 1..=4 {
            let g = table1_synthetic(idx);
            for o in g.op_ids() {
                if g.op(o).kind() == OperationKind::Detect {
                    detect_children += g.children(o).len();
                }
            }
        }
        assert_eq!(detect_children, 0, "detect operations fed other operations");
    }

    #[test]
    fn table1_sizes() {
        assert_eq!(table1_synthetic(1).len(), 20);
        assert_eq!(table1_synthetic(2).len(), 30);
        assert_eq!(table1_synthetic(3).len(), 40);
        assert_eq!(table1_synthetic(4).len(), 50);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn table1_rejects_bad_index() {
        table1_synthetic(0);
    }

    #[test]
    fn synthetic5_is_dense_and_deterministic() {
        let g = synthetic5();
        assert_eq!(g.len(), 100);
        assert_eq!(g, synthetic5());
    }

    #[test]
    fn depth_setter_bounds_depth() {
        let g = SyntheticSpec::new(20, 5).depth(5).generate();
        assert!(g.depth() <= 20);
        assert!(g.depth() >= 2);
    }

    #[test]
    fn wash_times_in_range() {
        let m = LogLinearWash::paper_calibrated();
        let g = table1_synthetic(4);
        for op in g.ops() {
            let w = m.wash_time(op.output_diffusion());
            assert!(w >= Duration::from_secs_f64(0.2));
            assert!(w <= Duration::from_secs(10));
        }
    }

    #[test]
    fn mixes_tend_to_have_two_parents() {
        let g = table1_synthetic(3);
        let mut multi = 0;
        let mut mixes_nonsource = 0;
        for o in g.op_ids() {
            if g.op(o).kind() == OperationKind::Mix && !g.parents(o).is_empty() {
                mixes_nonsource += 1;
                if g.parents(o).len() == 2 {
                    multi += 1;
                }
            }
        }
        assert!(mixes_nonsource > 0);
        // Most non-source mixes have two distinct parents (duplicate draws
        // collapse occasionally).
        assert!(multi * 2 >= mixes_nonsource, "{multi}/{mixes_nonsource}");
    }
}
