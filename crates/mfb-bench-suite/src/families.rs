//! Parameterized assay families: the classic structures of the biochip
//! synthesis literature, scalable to any size.
//!
//! Where [`crate::assays`] fixes the paper's exact benchmark instances,
//! this module generates whole *families* — mixing trees, serial dilution
//! ladders, interpolated dilutions, multiplexed panels — for scalability
//! studies and stress tests.

use mfb_model::prelude::*;

/// Diffusion coefficient whose residue washes in `secs` seconds under the
/// paper-calibrated model.
fn d_wash(secs: f64) -> DiffusionCoefficient {
    LogLinearWash::paper_calibrated().coefficient_for(Duration::from_secs_f64(secs))
}

/// A balanced binary **mixing tree** of the given depth: `2^depth` inputs
/// pairwise merged by `2^depth - 1` mix operations (PCR sample preparation
/// generalized). Depth 2 gives the classical 3-mix tree; depth 3 is PCR.
///
/// # Panics
///
/// Panics if `depth` is 0 or greater than 10.
pub fn mixing_tree(depth: u32) -> SequencingGraph {
    assert!((1..=10).contains(&depth), "depth must be 1..=10");
    let mut b = SequencingGraph::builder();
    b.name(format!("mixing-tree-{depth}"));
    // Level k has 2^(depth-k) mixes, k = 1..=depth.
    let mut prev: Vec<OpId> = (0..1u32 << (depth - 1))
        .map(|i| {
            b.labelled_operation(
                OperationKind::Mix,
                Duration::from_secs(6),
                d_wash(0.2 + f64::from(i % 4)),
                format!("leaf {i}"),
            )
        })
        .collect();
    let mut level = 1;
    while prev.len() > 1 {
        level += 1;
        let next: Vec<OpId> = prev
            .chunks(2)
            .enumerate()
            .map(|(i, pair)| {
                let op = b.labelled_operation(
                    OperationKind::Mix,
                    Duration::from_secs(6),
                    d_wash(1.0 + f64::from(level)),
                    format!("merge L{level} #{i}"),
                );
                for &p in pair {
                    b.edge(p, op).expect("tree edges are unique");
                }
                op
            })
            .collect();
        prev = next;
    }
    b.build().expect("trees are DAGs")
}

/// A **serial dilution** ladder: `steps` chained mixes, each diluting the
/// previous output with buffer, followed by a final detection.
///
/// # Panics
///
/// Panics if `steps` is 0.
pub fn serial_dilution(steps: u32) -> SequencingGraph {
    assert!(steps > 0, "at least one dilution step");
    let mut b = SequencingGraph::builder();
    b.name(format!("serial-dilution-{steps}"));
    let mut prev = None;
    for i in 0..steps {
        // Contamination decays with dilution.
        let wash = (8.0 - f64::from(i) * 0.8).max(0.5);
        let op = b.labelled_operation(
            OperationKind::Mix,
            Duration::from_secs(5),
            d_wash(wash),
            format!("dilute {i}"),
        );
        if let Some(p) = prev {
            b.edge(p, op).expect("chain edges are unique");
        }
        prev = Some(op);
    }
    let det = b.labelled_operation(
        OperationKind::Detect,
        Duration::from_secs(4),
        d_wash(0.2),
        "read",
    );
    b.edge(prev.expect("steps > 0"), det).expect("unique");
    b.build().expect("chains are DAGs")
}

/// An **interpolated dilution** lattice of the given number of levels:
/// each level mixes adjacent concentrations of the previous level, the
/// standard scheme for producing a linear concentration series. Level `k`
/// has `k` mixes; detections read the final level.
///
/// # Panics
///
/// Panics if `levels < 2`.
pub fn interpolated_dilution(levels: u32) -> SequencingGraph {
    assert!(levels >= 2, "need at least two levels");
    let mut b = SequencingGraph::builder();
    b.name(format!("interpolated-dilution-{levels}"));
    let mut prev: Vec<OpId> = (0..2)
        .map(|i| {
            b.labelled_operation(
                OperationKind::Mix,
                Duration::from_secs(5),
                d_wash(6.0),
                format!("stock {i}"),
            )
        })
        .collect();
    for level in 2..=levels {
        let mut next = Vec::new();
        for i in 0..prev.len() - 1 {
            let op = b.labelled_operation(
                OperationKind::Mix,
                Duration::from_secs(5),
                d_wash(6.0 - f64::from(level) * 0.4),
                format!("interp L{level} #{i}"),
            );
            b.edge(prev[i], op).expect("unique");
            b.edge(prev[i + 1], op).expect("unique");
            next.push(op);
        }
        // Carry the endpoints down unchanged (they stay available).
        let mut carried = vec![prev[0]];
        carried.extend(next);
        carried.push(*prev.last().expect("non-empty"));
        prev = carried;
    }
    for (i, &p) in prev.iter().enumerate().take(3) {
        let det = b.labelled_operation(
            OperationKind::Detect,
            Duration::from_secs(3),
            d_wash(0.2),
            format!("read {i}"),
        );
        b.edge(p, det).expect("unique");
    }
    b.build().expect("lattices are DAGs")
}

/// A **multiplexed panel**: `n` independent sample→mix→detect chains, the
/// IVD structure generalized.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn multiplexed_panel(n: u32) -> SequencingGraph {
    assert!(n > 0, "at least one channel");
    let mut b = SequencingGraph::builder();
    b.name(format!("panel-{n}"));
    for i in 0..n {
        let mix = b.labelled_operation(
            OperationKind::Mix,
            Duration::from_secs(5),
            d_wash(2.0 + f64::from(i % 4) * 2.0),
            format!("mix {i}"),
        );
        let det = b.labelled_operation(
            OperationKind::Detect,
            Duration::from_secs(4),
            d_wash(0.2),
            format!("read {i}"),
        );
        b.edge(mix, det).expect("unique");
    }
    b.build().expect("panels are DAGs")
}

/// A reasonable component allocation for `graph`: one component per kind
/// for every three operations of that kind, at least one where the kind is
/// used at all. (Leaner allocations serialize more operations, which piles
/// cached fluids into the channels; three-per-component keeps the
/// concurrency within what a conflict-free router can realize.)
pub fn recommended_allocation(graph: &SequencingGraph) -> Allocation {
    let h = graph.kind_histogram();
    let per = |n: usize| -> u32 {
        if n == 0 {
            0
        } else {
            (n as u32).div_ceil(3).max(1)
        }
    };
    Allocation::new(per(h[0]), per(h[1]), per(h[2]), per(h[3]))
}

/// The scalability series used by the `scalability` bench: synthetic
/// assays of growing size with matching allocations.
pub fn scalability_series() -> Vec<(SequencingGraph, Allocation)> {
    [10usize, 20, 30, 40, 60, 80]
        .into_iter()
        .map(|n| {
            let g = crate::synth::SyntheticSpec::new(n, 0x5CA1E ^ n as u64)
                .kind_weights([4, 2, 2, 1])
                .name(format!("scale-{n}"))
                .generate();
            let a = recommended_allocation(&g);
            (g, a)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_tree_sizes() {
        assert_eq!(mixing_tree(1).len(), 1);
        assert_eq!(mixing_tree(2).len(), 3);
        assert_eq!(mixing_tree(3).len(), 7); // PCR
        let g = mixing_tree(4);
        assert_eq!(g.len(), 15);
        assert_eq!(g.sinks().count(), 1);
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn serial_dilution_is_a_chain() {
        let g = serial_dilution(6);
        assert_eq!(g.len(), 7); // 6 dilutions + detect
        assert_eq!(g.depth(), 7);
        assert_eq!(g.sources().count(), 1);
    }

    #[test]
    fn interpolated_dilution_grows_by_level() {
        let g = interpolated_dilution(4);
        // Levels 2..4 add 1 + 2 + 3 mixes on top of 2 stocks, plus 3 reads.
        assert_eq!(g.kind_histogram()[3], 3);
        assert!(g.len() > 8);
        assert!(g.depth() >= 4);
    }

    #[test]
    fn panel_is_parallel_pairs() {
        let g = multiplexed_panel(6);
        assert_eq!(g.len(), 12);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.kind_histogram(), [6, 0, 0, 6]);
    }

    #[test]
    fn recommended_allocation_covers_graph() {
        for g in [
            mixing_tree(3),
            serial_dilution(8),
            interpolated_dilution(4),
            multiplexed_panel(5),
        ] {
            let a = recommended_allocation(&g);
            let set = a.instantiate(&ComponentLibrary::default());
            assert!(set.covers(g.ops().map(|o| o.kind())), "{}", g.name());
        }
    }

    #[test]
    fn scalability_series_is_monotone() {
        let series = scalability_series();
        assert_eq!(series.len(), 6);
        for w in series.windows(2) {
            assert!(w[0].0.len() < w[1].0.len());
        }
        for (g, a) in &series {
            assert!(a
                .instantiate(&ComponentLibrary::default())
                .covers(g.ops().map(|o| o.kind())));
        }
    }
}
