//! Reconstructions of the paper's real-life bioassays and its Fig. 2(a)
//! running example.
//!
//! The original benchmark files were never published; these reconstructions
//! follow the assays' well-known published structure (see each function's
//! docs) and anchor every degree of freedom we *do* know from the paper —
//! operation counts, component allocations, and the Fig. 2(a) priority value.
//! Wash times are prescribed per fluid and converted into diffusion
//! coefficients through the paper-calibrated log-linear wash model, so the
//! wash landscape spans the full 0.2 s … 10 s range the paper discusses.

use mfb_model::prelude::*;

/// Diffusion coefficient whose residue needs exactly `secs` seconds of
/// washing under the paper-calibrated model.
fn d_wash(secs: f64) -> DiffusionCoefficient {
    LogLinearWash::paper_calibrated().coefficient_for(Duration::from_secs_f64(secs))
}

/// The Fig. 2(a) running example: 10 operations on 3 mixers, 1 heater and
/// 1 detector.
///
/// Reconstructed to preserve the paper's stated facts:
///
/// * with `t_c = 2 s`, the priority value of `o1` is **21 s**, realised by
///   the path `o1 → o5 → o7 → o10 → sink`;
/// * the residue of `o1` is the worst contaminant on the chip (10 s wash,
///   as in the Fig. 3(a) discussion), while most other fluids wash in 2 s.
///
/// Operation ids follow the paper's numbering shifted down by one
/// (`o1` is `OpId(0)`).
pub fn motivating() -> SequencingGraph {
    let mut b = SequencingGraph::builder();
    b.name("Fig2a");
    let s = Duration::from_secs;
    let o1 = b.labelled_operation(OperationKind::Mix, s(3), d_wash(10.0), "o1");
    let o2 = b.labelled_operation(OperationKind::Mix, s(4), d_wash(2.0), "o2");
    let o3 = b.labelled_operation(OperationKind::Mix, s(4), d_wash(6.0), "o3");
    let o4 = b.labelled_operation(OperationKind::Mix, s(3), d_wash(2.0), "o4");
    let o5 = b.labelled_operation(OperationKind::Heat, s(4), d_wash(2.0), "o5");
    let o6 = b.labelled_operation(OperationKind::Mix, s(5), d_wash(4.0), "o6");
    let o7 = b.labelled_operation(OperationKind::Mix, s(4), d_wash(2.0), "o7");
    let o8 = b.labelled_operation(OperationKind::Heat, s(3), d_wash(0.2), "o8");
    let o9 = b.labelled_operation(OperationKind::Detect, s(3), d_wash(0.2), "o9");
    let o10 = b.labelled_operation(OperationKind::Detect, s(4), d_wash(0.2), "o10");
    b.edge(o1, o5).expect("edge endpoints are valid");
    b.edge(o3, o6).expect("edge endpoints are valid");
    b.edge(o4, o6).expect("edge endpoints are valid");
    b.edge(o2, o7).expect("edge endpoints are valid");
    b.edge(o5, o7).expect("edge endpoints are valid");
    b.edge(o6, o8).expect("edge endpoints are valid");
    b.edge(o8, o9).expect("edge endpoints are valid");
    b.edge(o7, o10).expect("edge endpoints are valid");
    b.edge(o9, o10).expect("edge endpoints are valid");
    b.build().expect("motivating example is a valid DAG")
}

/// **PCR** — polymerase chain reaction sample preparation: the classical
/// three-level binary mixing tree. Eight input reagents (template DNA,
/// primers, dNTPs, polymerase, buffers) are pairwise merged by 4 + 2 + 1 = 7
/// mix operations. Runs on 3 mixers (Table I).
///
/// PCR reagents are predominantly small molecules and short oligos, so
/// residues wash quickly (0.2 s – 3 s).
pub fn pcr() -> SequencingGraph {
    let mut b = SequencingGraph::builder();
    b.name("PCR");
    let s = Duration::from_secs;
    // Leaf mixes merge raw inputs; wash times reflect the reagent mix.
    let m1 = b.labelled_operation(OperationKind::Mix, s(6), d_wash(0.2), "mix dNTP+buffer");
    let m2 = b.labelled_operation(OperationKind::Mix, s(6), d_wash(1.0), "mix primer+buffer");
    let m3 = b.labelled_operation(OperationKind::Mix, s(6), d_wash(2.0), "mix template+buffer");
    let m4 = b.labelled_operation(
        OperationKind::Mix,
        s(6),
        d_wash(3.0),
        "mix polymerase+glycerol",
    );
    // Level 2.
    let m5 = b.labelled_operation(OperationKind::Mix, s(6), d_wash(1.0), "merge 1+2");
    let m6 = b.labelled_operation(OperationKind::Mix, s(6), d_wash(3.0), "merge 3+4");
    // Root.
    let m7 = b.labelled_operation(OperationKind::Mix, s(6), d_wash(3.0), "master mix");
    b.edge(m1, m5).expect("edge endpoints are valid");
    b.edge(m2, m5).expect("edge endpoints are valid");
    b.edge(m3, m6).expect("edge endpoints are valid");
    b.edge(m4, m6).expect("edge endpoints are valid");
    b.edge(m5, m7).expect("edge endpoints are valid");
    b.edge(m6, m7).expect("edge endpoints are valid");
    b.build().expect("PCR is a valid DAG")
}

/// **IVD** — in-vitro diagnostics: six independent sample/reagent pairs are
/// mixed and then optically analysed (`mix_i → detect_i`), the structure of
/// the classical multiplexed IVD benchmark. Runs on 3 mixers + 2 detectors
/// (Table I).
///
/// Serum samples carry proteins and cell debris, so wash times are mid-range
/// to slow (2 s – 8 s) — exactly the regime where DCSA scheduling decisions
/// matter.
pub fn ivd() -> SequencingGraph {
    let mut b = SequencingGraph::builder();
    b.name("IVD");
    let s = Duration::from_secs;
    // Per-pair residue wash times: serum-heavy pairs wash slowly.
    let wash = [2.0, 4.0, 8.0, 2.0, 6.0, 4.0];
    for (i, &w) in wash.iter().enumerate() {
        let mix = b.labelled_operation(
            OperationKind::Mix,
            s(5),
            d_wash(w),
            format!("mix S{}+R{}", i + 1, i + 1),
        );
        let det = b.labelled_operation(
            OperationKind::Detect,
            s(4),
            d_wash(0.2),
            format!("detect assay {}", i + 1),
        );
        b.edge(mix, det).expect("edge endpoints are valid");
    }
    b.build().expect("IVD is a valid DAG")
}

/// **CPA** — colorimetric protein assay (Bradford): a serial-dilution ladder.
/// One initial sample/buffer mix feeds six serial dilution chains of six
/// mixes each; every chain tail is mixed with Coomassie dye and detected, and
/// a calibration detect taps each chain's midpoint. Total:
/// `1 + 6×6 + 6 + 6 + 6 = 55` operations, matching Table I. Runs on
/// 8 mixers + 2 detectors.
///
/// Protein-laden fluids diffuse slowly; dilution reduces concentration, so
/// wash times decay along each chain from 8 s down to 2 s.
pub fn cpa() -> SequencingGraph {
    const CHAINS: usize = 6;
    const CHAIN_LEN: usize = 6;
    let mut b = SequencingGraph::builder();
    b.name("CPA");
    let s = Duration::from_secs;

    let root = b.labelled_operation(OperationKind::Mix, s(6), d_wash(8.0), "sample+buffer");
    for chain in 0..CHAINS {
        let mut prev = root;
        let mut mid = root;
        for step in 0..CHAIN_LEN {
            // Wash time decays with dilution: 8 s at the top, 2 s at the tail.
            let w = 8.0 - step as f64 * 1.2;
            let op = b.labelled_operation(
                OperationKind::Mix,
                s(6),
                d_wash(w),
                format!("dilute c{chain} s{step}"),
            );
            b.edge(prev, op).expect("edge endpoints are valid");
            if step == CHAIN_LEN / 2 - 1 {
                mid = op;
            }
            prev = op;
        }
        let dye = b.labelled_operation(
            OperationKind::Mix,
            s(6),
            d_wash(6.0),
            format!("dye c{chain}"),
        );
        b.edge(prev, dye).expect("edge endpoints are valid");
        let det = b.labelled_operation(
            OperationKind::Detect,
            s(4),
            d_wash(0.2),
            format!("detect c{chain}"),
        );
        b.edge(dye, det).expect("edge endpoints are valid");
        let cal = b.labelled_operation(
            OperationKind::Detect,
            s(4),
            d_wash(0.2),
            format!("calibrate c{chain}"),
        );
        b.edge(mid, cal).expect("edge endpoints are valid");
    }
    let g = b.build().expect("CPA is a valid DAG");
    debug_assert_eq!(g.len(), 55);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivating_structure() {
        let g = motivating();
        assert_eq!(g.len(), 10);
        assert_eq!(g.edge_count(), 9);
        // o1 (index 0) has priority 21 at t_c = 2 s.
        assert_eq!(
            g.priority_values(Duration::from_secs(2))[0],
            Duration::from_secs(21)
        );
        // The o1 residue is the chip's worst contaminant: 10 s wash.
        let m = LogLinearWash::paper_calibrated();
        assert_eq!(
            m.wash_time(g.op(OpId::new(0)).output_diffusion()),
            Duration::from_secs(10)
        );
    }

    #[test]
    fn pcr_is_binary_tree() {
        let g = pcr();
        assert_eq!(g.len(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.sinks().count(), 1);
        assert_eq!(g.sources().count(), 4);
        assert_eq!(g.depth(), 3);
        assert!(g.ops().all(|o| o.kind() == OperationKind::Mix));
    }

    #[test]
    fn ivd_is_six_independent_pairs() {
        let g = ivd();
        assert_eq!(g.len(), 12);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.sources().count(), 6);
        assert_eq!(g.sinks().count(), 6);
        assert_eq!(g.kind_histogram(), [6, 0, 0, 6]);
    }

    #[test]
    fn cpa_counts_match_table1() {
        let g = cpa();
        assert_eq!(g.len(), 55);
        assert_eq!(g.kind_histogram(), [43, 0, 0, 12]);
        // One root source; 6 final + 6 calibration detects are sinks.
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 12);
        // Deep: root + 6 dilutions + dye + detect.
        assert_eq!(g.depth(), 9);
    }

    #[test]
    fn wash_times_span_the_paper_range() {
        let m = LogLinearWash::paper_calibrated();
        for g in [motivating(), pcr(), ivd(), cpa()] {
            for op in g.ops() {
                let w = m.wash_time(op.output_diffusion());
                assert!(
                    w >= Duration::from_secs_f64(0.2) && w <= Duration::from_secs(10),
                    "{} wash {} out of range",
                    op.id(),
                    w
                );
            }
        }
    }
}
