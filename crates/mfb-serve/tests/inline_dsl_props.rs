//! The inline-DSL submit form is a pure transport convenience: a job
//! submitted as `{"assay": "<dsl source>"}` must be indistinguishable —
//! same cache key, byte-identical solution — from the same program
//! submitted as a path to a file holding that source. This is what lets
//! clients switch between the two forms freely without poisoning the
//! server's warm cache.

use mfb_batch::prelude::*;
use mfb_core::prelude::*;
use proptest::prelude::*;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A tiny random assay program: 2..=5 ops in a chain plus optional extra
/// forward edges, every op allocatable by `alloc 2 1 1 1`.
fn arb_assay_source() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(
            (
                prop_oneof![Just("mix"), Just("heat"), Just("filter"), Just("detect")],
                1u64..20,
                1u64..=80,
            ),
            2..=5,
        ),
        proptest::collection::vec((0usize..5, 0usize..5), 0..4),
        proptest::option::of(prop_oneof![Just("dcsa"), Just("baseline")]),
        proptest::option::of(1u64..8),
    )
        .prop_map(|(ops, extra, flow, t_c)| {
            let n = ops.len();
            let mut s = String::from("assay-dsl 1\nassay \"inline-prop\"\n");
            for (i, (kind, dur, wash_ticks)) in ops.iter().enumerate() {
                s.push_str(&format!(
                    "op o{i} {kind} {dur}s wash={}s\n",
                    *wash_ticks as f64 / 10.0
                ));
            }
            // A spine keeps the graph connected; extras add forward edges.
            for i in 1..n {
                s.push_str(&format!("edge o{} -> o{i}\n", i - 1));
            }
            let mut seen = std::collections::HashSet::new();
            for (i, j) in extra {
                if i + 1 < j && j < n && seen.insert((i, j)) {
                    s.push_str(&format!("edge o{i} -> o{j}\n"));
                }
            }
            match (flow, t_c) {
                (Some(f), Some(t)) => s.push_str(&format!("flow {f} t_c={t}s\n")),
                (Some(f), None) => s.push_str(&format!("flow {f}\n")),
                (None, Some(t)) => s.push_str(&format!("flow t_c={t}s\n")),
                (None, None) => {}
            }
            s.push_str("alloc 2 1 1 1\n");
            s
        })
}

fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_owned()).expect("strings always encode")
}

proptest! {
    // Each case runs full synthesis twice; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn inline_and_path_submissions_are_indistinguishable(src in arb_assay_source()) {
        let dir = std::env::temp_dir().join(format!(
            "mfb_inline_dsl_props_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("prog.assay");
        std::fs::write(&path, &src).expect("write assay");

        // The exact shape `mfb serve` builds in `submit`: one manifest
        // entry wrapped in a bare array. Pin the name so the file stem
        // cannot differ from the inline default.
        let inline = format!(r#"[ {{ "assay": {}, "name": "p" }} ]"#, json_str(&src));
        let by_path = r#"[ { "assay": "prog.assay", "name": "p" } ]"#;

        let a = parse_manifest(&inline, Path::new(".")).expect("inline parses");
        let b = parse_manifest(by_path, &dir).expect("path parses");
        prop_assert_eq!(a.len(), 1);
        prop_assert_eq!(b.len(), 1);

        // Identical cache identity: a warm cache primed through one form
        // must hit when the other form arrives.
        prop_assert_eq!(a[0].schedule_key(), b[0].schedule_key());
        prop_assert_eq!(&a[0].name, &b[0].name);
        prop_assert_eq!(&a[0].defects, &b[0].defects);

        // Identical results, byte for byte once serialized.
        let cache_a = StageCache::new();
        let cache_b = StageCache::new();
        let run_a = run_batch(&a, &cache_a);
        let run_b = run_batch(&b, &cache_b);
        let sol_a = run_a.solutions[0].as_ref().expect("inline synthesizes");
        let sol_b = run_b.solutions[0].as_ref().expect("path synthesizes");
        let bytes_a = serde_json::to_string(sol_a).expect("serializes");
        let bytes_b = serde_json::to_string(sol_b).expect("serializes");
        prop_assert_eq!(bytes_a, bytes_b);

        std::fs::remove_dir_all(&dir).ok();
    }
}
