//! End-to-end daemon tests over a real TCP socket: submit/status/result
//! round trips, warm-cache hits on resubmission, deadline and
//! cancellation semantics, admission rejections, trace export, and
//! drain-based graceful shutdown with a persistent snapshot.

use mfb_serve::prelude::*;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn call(&mut self, line: &str) -> Value {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        serde_json::from_str(response.trim()).expect("response is JSON")
    }

    /// Polls `status` until the job is terminal; returns the final
    /// `result` response.
    fn wait(&mut self, id: &str, timeout: Duration) -> Value {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.call(&format!("{{\"op\":\"status\",\"id\":\"{id}\"}}"));
            let state = status
                .get("state")
                .and_then(Value::as_str)
                .unwrap_or("missing");
            if !matches!(state, "queued" | "running") {
                return self.call(&format!("{{\"op\":\"result\",\"id\":\"{id}\"}}"));
            }
            assert!(
                Instant::now() < deadline,
                "job {id} still {state} after {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

fn start_server(
    cfg: ServerConfig,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ServeSummary>,
) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle, join)
}

fn ok(v: &Value) -> bool {
    v.get("ok").and_then(Value::as_bool) == Some(true)
}

fn id_of(v: &Value) -> String {
    v.get("id").and_then(Value::as_str).expect("id").to_owned()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mfb-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

#[test]
fn submit_runs_warm_second_time_and_drains_with_snapshot() {
    let dir = tmp_dir("warm");
    let (addr, _handle, join) = start_server(ServerConfig {
        cache_dir: Some(dir.clone()),
        workers: 2,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);

    assert!(ok(&c.call(r#"{"op":"ping"}"#)));

    // Cold run.
    let sub = c.call(r#"{"op":"submit","job":{"bench":"PCR"},"trace":true}"#);
    assert!(ok(&sub), "{sub:?}");
    let id = id_of(&sub);
    let result = c.wait(&id, Duration::from_secs(120));
    assert!(ok(&result), "{result:?}");
    assert_eq!(result.get("state").and_then(Value::as_str), Some("done"));
    let outcome = result.get("outcome").expect("outcome");
    assert_eq!(outcome.get("ok").and_then(Value::as_bool), Some(true));
    let cold_exec = outcome.get("execution_secs").and_then(Value::as_f64);

    // The requested trace came back as parseable JSONL.
    let trace = result
        .get("trace_jsonl")
        .and_then(Value::as_str)
        .expect("trace_jsonl");
    if !trace.is_empty() {
        mfb_obs::export::check_jsonl(trace).expect("trace is well-formed JSONL");
    }

    // Warm run: byte-identical outcome, cache hits counted.
    let sub2 = c.call(r#"{"op":"submit","job":{"bench":"PCR"}}"#);
    let id2 = id_of(&sub2);
    let result2 = c.wait(&id2, Duration::from_secs(120));
    let outcome2 = result2.get("outcome").expect("outcome");
    assert_eq!(
        outcome2.get("execution_secs").and_then(Value::as_f64),
        cold_exec,
        "warm result must match cold"
    );
    assert_eq!(
        outcome2.get("warm_schedule").and_then(Value::as_bool),
        Some(true)
    );

    let stats = c.call(r#"{"op":"stats"}"#);
    assert!(ok(&stats));
    let hits = stats
        .pointer_or("cache", "stats")
        .and_then(|s| s.get("schedule_hits"))
        .and_then(Value::as_u64)
        .expect("schedule_hits");
    assert!(hits > 0, "warm submission must hit the cache: {stats:?}");

    // Drain: server exits cleanly and leaves a snapshot on disk.
    assert!(ok(&c.call(r#"{"op":"drain"}"#)));
    let summary = join.join().expect("server thread");
    assert_eq!(summary.done, 2);
    assert!(summary.snapshot_entries.unwrap_or(0) > 0);
    assert!(dir.join("cache.snap").exists());

    // A fresh server over the same cache-dir starts warm.
    let (addr2, _h2, join2) = start_server(ServerConfig {
        cache_dir: Some(dir.clone()),
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c2 = Client::connect(addr2);
    let sub3 = c2.call(r#"{"op":"submit","job":{"bench":"PCR"}}"#);
    let id3 = id_of(&sub3);
    let result3 = c2.wait(&id3, Duration::from_secs(120));
    let outcome3 = result3.get("outcome").expect("outcome");
    assert_eq!(
        outcome3.get("execution_secs").and_then(Value::as_f64),
        cold_exec,
        "restarted server must reproduce results from its snapshot"
    );
    assert!(ok(&c2.call(r#"{"op":"drain"}"#)));
    let summary2 = join2.join().expect("server thread");
    assert!(summary2.loaded.imported > 0, "{:?}", summary2.loaded);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tiny helper: `v["cache"]["stats"]`-style traversal without panicking.
trait PointerOr {
    fn pointer_or(&self, a: &str, b: &str) -> Option<&Value>;
}
impl PointerOr for Value {
    fn pointer_or(&self, a: &str, b: &str) -> Option<&Value> {
        self.get(a).and_then(|v| v.get(b))
    }
}

#[test]
fn deadline_jobs_fail_typed_and_within_twice_the_budget() {
    let (addr, handle, join) = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);

    // A budget far too small for Synthetic4 (the largest Table-I
    // bench): must come back `deadline`, and promptly. The elapsed
    // bound allows the worker's 50 ms queue-poll plus checkpoint
    // granularity on top of the 2x-budget acceptance criterion, but
    // stays far under a full Synthetic4 run.
    let budget = Duration::from_millis(5);
    let t0 = Instant::now();
    let sub = c.call(r#"{"op":"submit","job":{"bench":"Synthetic4"},"timeout_secs":0.005}"#);
    assert!(ok(&sub), "{sub:?}");
    let id = id_of(&sub);
    let result = c.wait(&id, Duration::from_secs(30));
    let elapsed = t0.elapsed();
    assert_eq!(
        result.get("state").and_then(Value::as_str),
        Some("deadline"),
        "{result:?}"
    );
    assert_eq!(
        result.get("error_kind").and_then(Value::as_str),
        Some("deadline_exceeded")
    );
    // The acceptance bound is 2x the budget; checkpoints are far finer
    // than 200 ms, so the slack beyond 2x here is only queue polling.
    assert!(
        elapsed < budget * 2 + Duration::from_secs(1),
        "deadline took {elapsed:?} against a {budget:?} budget"
    );

    handle.drain();
    let _ = join.join();
}

#[test]
fn cancel_is_typed_and_admission_control_rejects() {
    let (addr, handle, join) = start_server(ServerConfig {
        workers: 1,
        queue_cap: 2,
        client_cap: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);

    // Occupy the single worker with the biggest bench; everything
    // submitted behind it stays queued, making admission and
    // cancellation behavior deterministic.
    let sub = c.call(r#"{"op":"submit","job":{"bench":"Synthetic4"},"client":"a"}"#);
    assert!(ok(&sub), "{sub:?}");
    let id = id_of(&sub);

    // Per-client cap: client "b" may hold one slot; its second submit
    // is a typed client_saturated rejection while the first is queued.
    let b1 = c.call(r#"{"op":"submit","job":{"bench":"PCR"},"client":"b"}"#);
    assert!(ok(&b1), "{b1:?}");
    let b1id = id_of(&b1);
    let b2 = c.call(r#"{"op":"submit","job":{"bench":"PCR"},"client":"b"}"#);
    assert_eq!(
        b2.get("error").and_then(Value::as_str),
        Some("client_saturated"),
        "{b2:?}"
    );

    // Unknown ids and premature results are typed too.
    let unknown = c.call(r#"{"op":"status","id":"j999"}"#);
    assert_eq!(
        unknown.get("error").and_then(Value::as_str),
        Some("unknown_job")
    );
    let premature = c.call(&format!("{{\"op\":\"result\",\"id\":\"{b1id}\"}}"));
    assert_eq!(
        premature.get("error").and_then(Value::as_str),
        Some("not_ready"),
        "{premature:?}"
    );

    // Bad frames get typed errors on a live connection.
    let bad = c.call("this is not json");
    assert_eq!(bad.get("error").and_then(Value::as_str), Some("bad_frame"));
    let unknown_op = c.call(r#"{"op":"frobnicate"}"#);
    assert_eq!(
        unknown_op.get("error").and_then(Value::as_str),
        Some("unknown_op")
    );

    // Cancel the running job: the SA/A* checkpoints abort it and the
    // typed `cancelled` state comes back.
    let cancel = c.call(&format!("{{\"op\":\"cancel\",\"id\":\"{id}\"}}"));
    assert!(ok(&cancel), "{cancel:?}");
    let result = c.wait(&id, Duration::from_secs(30));
    assert_eq!(
        result.get("state").and_then(Value::as_str),
        Some("cancelled"),
        "{result:?}"
    );
    assert_eq!(
        result.get("error_kind").and_then(Value::as_str),
        Some("cancelled")
    );

    // Wait for b's job so drain exits promptly.
    let _ = c.wait(&b1id, Duration::from_secs(120));
    handle.drain();
    let _ = join.join();
}

#[test]
fn inline_assay_submission_synthesizes_end_to_end() {
    let (addr, handle, join) = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);

    // A self-contained `.assay` program carried in the submit frame: no
    // file ever touches the server's disk.
    let src = "assay-dsl 1\nassay \"wire\"\n\nop a mix 5s wash=2s\nop b detect 4s wash=1s\n\nedge a -> b\n\nflow baseline seed=3\n\nalloc 1 0 0 1\n";
    let job = format!(
        r#"{{"op":"submit","job":{{"assay":{}}}}}"#,
        serde_json::to_string(&src.to_owned()).expect("encode")
    );
    let sub = c.call(&job);
    assert!(ok(&sub), "{sub:?}");
    let result = c.wait(&id_of(&sub), Duration::from_secs(120));
    assert!(ok(&result), "{result:?}");
    assert_eq!(result.get("state").and_then(Value::as_str), Some("done"));
    let outcome = result.get("outcome").expect("outcome");
    assert_eq!(outcome.get("ok").and_then(Value::as_bool), Some(true));
    // The job's display name comes from the program's `assay` statement.
    assert_eq!(outcome.get("name").and_then(Value::as_str), Some("wire"));

    // A syntactically broken inline program fails with a typed error,
    // not a dropped connection.
    let bad = c.call(r#"{"op":"submit","job":{"assay":"assay-dsl 1\nop"}}"#);
    assert_eq!(
        bad.get("ok").and_then(Value::as_bool),
        Some(false),
        "{bad:?}"
    );

    handle.drain();
    join.join().expect("server thread");
}
