//! Property tests for the wire protocol: **no input panics the
//! parser**, and every malformed frame yields a typed error that
//! renders as valid JSON. This is the contract that lets the daemon
//! face untrusted clients: the worst a hostile frame can do is earn
//! itself an error response.

use mfb_serve::prelude::*;
use proptest::prelude::*;

/// Parse must not panic; on failure the error must render as a valid
/// single-line JSON response.
fn never_panics_and_errors_are_json(line: &str) -> Result<(), TestCaseError> {
    let parsed = std::panic::catch_unwind(|| parse_request(line));
    let result = match parsed {
        Ok(r) => r,
        Err(_) => return Err(TestCaseError::fail("parse_request panicked")),
    };
    if let Err(e) = result {
        let response = e.to_response();
        prop_assert!(!response.contains('\n'), "response must be one line");
        let doc: serde_json::Value = serde_json::from_str(&response)
            .map_err(|err| TestCaseError::fail(format!("error response not JSON: {err}")))?;
        prop_assert_eq!(
            doc.get("ok").and_then(serde_json::Value::as_bool),
            Some(false)
        );
        prop_assert!(doc
            .get("error")
            .and_then(serde_json::Value::as_str)
            .is_some());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable soup (including exotic Unicode).
    #[test]
    fn random_text_never_panics(line in "\\PC{0,200}") {
        never_panics_and_errors_are_json(&line)?;
    }

    /// Arbitrary bytes, lossily decoded — stresses the UTF-8 edges the
    /// socket layer can hand the parser.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        never_panics_and_errors_are_json(&line)?;
    }

    /// Valid requests truncated at every possible byte boundary: the
    /// classic torn-frame case after a crashed client.
    #[test]
    fn truncated_valid_requests_never_panic(cut in 0usize..200, which in 0usize..5) {
        let full = match which {
            0 => r#"{"op":"submit","job":{"bench":"PCR","seed":7},"timeout_secs":30,"priority":2,"client":"ci","trace":true}"#,
            1 => r#"{"op":"status","id":"j17"}"#,
            2 => r#"{"op":"result","id":"j17"}"#,
            3 => r#"{"op":"cancel","id":"j17"}"#,
            _ => r#"{"op":"stats"}"#,
        };
        let cut = cut.min(full.len());
        // Cut on a char boundary (these are all ASCII, so every byte).
        let line = &full[..cut];
        never_panics_and_errors_are_json(line)?;
        // A truncated frame must never parse as a *different* valid verb.
        if cut < full.len() {
            prop_assert!(parse_request(line).is_err(), "truncation must not parse: {line:?}");
        }
    }

    /// Oversized frames are typed `bad_frame` rejections, not panics or
    /// unbounded allocations.
    #[test]
    fn oversized_frames_are_typed(extra in 1usize..4096) {
        let line = format!(
            "{{\"op\":\"stats\",\"pad\":\"{}\"}}",
            "x".repeat(MAX_FRAME + extra)
        );
        match parse_request(&line) {
            Err(e) => prop_assert_eq!(e.kind, ErrorKind::BadFrame),
            Ok(r) => return Err(TestCaseError::fail(format!("oversized frame parsed: {r:?}"))),
        }
    }

    /// Deep nesting must not blow the stack (the JSON shim is recursive;
    /// this bounds how deep a hostile frame can drive it within one
    /// MAX_FRAME — and documents that the answer is "errors, not UB").
    #[test]
    fn nested_arrays_never_panic(depth in 1usize..300) {
        let line = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
        never_panics_and_errors_are_json(&line)?;
    }
}

#[test]
fn every_error_kind_has_a_stable_token() {
    let kinds = [
        ErrorKind::BadFrame,
        ErrorKind::BadRequest,
        ErrorKind::UnknownOp,
        ErrorKind::QueueFull,
        ErrorKind::ClientSaturated,
        ErrorKind::UnknownJob,
        ErrorKind::NotReady,
        ErrorKind::Draining,
        ErrorKind::JobFailed,
    ];
    let mut seen = std::collections::HashSet::new();
    for k in kinds {
        assert!(seen.insert(k.token()), "duplicate token {}", k.token());
        assert!(k
            .token()
            .chars()
            .all(|c| c.is_ascii_lowercase() || c == '_'));
    }
}
