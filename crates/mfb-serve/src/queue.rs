//! Bounded admission queue with priorities and per-client caps.
//!
//! Admission control is the daemon's backpressure valve: the queue has a
//! hard capacity, each client has an in-flight cap (queued **plus**
//! running, released only when a job reaches a terminal state), and both
//! rejections are *typed* — the client sees `queue_full` or
//! `client_saturated` immediately instead of a connection that hangs
//! until the server falls over.
//!
//! Dispatch order is priority, then FIFO: lower priority numbers run
//! first, and within a level jobs leave in submission order (a
//! monotonically increasing sequence number breaks ties, so two equal
//! entries can never reorder).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// The verdict of [`JobQueue::try_push`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Admission {
    /// The job was enqueued.
    Accepted,
    /// The queue is at its capacity.
    QueueFull {
        /// The configured capacity.
        cap: usize,
    },
    /// The client already has `cap` jobs in flight.
    ClientSaturated {
        /// The configured per-client cap.
        cap: usize,
    },
    /// The queue is draining and admits nothing new.
    Draining,
}

struct Inner<T> {
    // Reverse((priority, seq, item)): the binary heap is a max-heap, so
    // Reverse pops the smallest (priority, seq) — most urgent, oldest.
    heap: BinaryHeap<Reverse<(u8, u64, T)>>,
    seq: u64,
    in_flight: HashMap<String, usize>,
    draining: bool,
}

/// A bounded, priority-ordered admission queue. `T` is the job handle
/// (the server uses job ids).
pub struct JobQueue<T: Ord> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
    client_cap: usize,
}

impl<T: Ord> std::fmt::Debug for JobQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("cap", &self.cap)
            .field("client_cap", &self.client_cap)
            .field("len", &self.len())
            .finish()
    }
}

impl<T: Ord> JobQueue<T> {
    /// A queue admitting at most `cap` queued jobs, at most `client_cap`
    /// in flight per client.
    pub fn new(cap: usize, client_cap: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                seq: 0,
                in_flight: HashMap::new(),
                draining: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            client_cap: client_cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts admission. On [`Admission::Accepted`] the client's
    /// in-flight count is incremented; pair every acceptance with exactly
    /// one [`release_client`](Self::release_client) when the job reaches
    /// a terminal state.
    pub fn try_push(&self, client: &str, priority: u8, item: T) -> Admission {
        let mut st = self.lock();
        if st.draining {
            return Admission::Draining;
        }
        if st.heap.len() >= self.cap {
            return Admission::QueueFull { cap: self.cap };
        }
        let count = st.in_flight.get(client).copied().unwrap_or(0);
        if count >= self.client_cap {
            return Admission::ClientSaturated {
                cap: self.client_cap,
            };
        }
        *st.in_flight.entry(client.to_owned()).or_insert(0) += 1;
        let seq = st.seq;
        st.seq += 1;
        st.heap.push(Reverse((priority, seq, item)));
        drop(st);
        self.ready.notify_one();
        Admission::Accepted
    }

    /// Pops the most urgent job, waiting up to `timeout`. `None` on
    /// timeout (callers poll their shutdown flags between waits).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut st = self.lock();
        if st.heap.is_empty() {
            let (guard, _) = self
                .ready
                .wait_timeout(st, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        st.heap.pop().map(|Reverse((_, _, item))| item)
    }

    /// Releases one in-flight slot for `client` (its job finished,
    /// failed, or was cancelled).
    pub fn release_client(&self, client: &str) {
        let mut st = self.lock();
        if let Some(n) = st.in_flight.get_mut(client) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                st.in_flight.remove(client);
            }
        }
    }

    /// Stops admissions; queued jobs still drain through
    /// [`pop_timeout`](Self::pop_timeout).
    pub fn drain(&self) {
        self.lock().draining = true;
        self.ready.notify_all();
    }

    /// True once [`drain`](Self::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Jobs currently queued (not yet popped).
    pub fn len(&self) -> usize {
        self.lock().heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Jobs in flight for `client` (queued plus running).
    pub fn in_flight(&self, client: &str) -> usize {
        self.lock().in_flight.get(client).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_priority_and_priority_order() {
        let q: JobQueue<u32> = JobQueue::new(16, 16);
        assert_eq!(q.try_push("a", 5, 1), Admission::Accepted);
        assert_eq!(q.try_push("a", 5, 2), Admission::Accepted);
        assert_eq!(q.try_push("a", 0, 3), Admission::Accepted);
        assert_eq!(q.try_push("a", 9, 4), Admission::Accepted);
        assert_eq!(q.try_push("a", 0, 5), Admission::Accepted);
        let order: Vec<u32> = (0..5)
            .map(|_| q.pop_timeout(Duration::ZERO).unwrap())
            .collect();
        assert_eq!(order, vec![3, 5, 1, 2, 4]);
    }

    #[test]
    fn queue_cap_and_client_cap_reject_typed() {
        let q: JobQueue<u32> = JobQueue::new(2, 1);
        assert_eq!(q.try_push("a", 5, 1), Admission::Accepted);
        assert_eq!(q.try_push("a", 5, 2), Admission::ClientSaturated { cap: 1 });
        assert_eq!(q.try_push("b", 5, 2), Admission::Accepted);
        assert_eq!(q.try_push("c", 5, 3), Admission::QueueFull { cap: 2 });
        // Popping does not release the client slot — termination does.
        assert_eq!(q.pop_timeout(Duration::ZERO), Some(1));
        assert_eq!(q.try_push("a", 5, 4), Admission::ClientSaturated { cap: 1 });
        q.release_client("a");
        assert_eq!(q.try_push("a", 5, 4), Admission::Accepted);
    }

    #[test]
    fn draining_rejects_but_still_pops() {
        let q: JobQueue<u32> = JobQueue::new(8, 8);
        assert_eq!(q.try_push("a", 5, 1), Admission::Accepted);
        q.drain();
        assert!(q.is_draining());
        assert_eq!(q.try_push("a", 5, 2), Admission::Draining);
        assert_eq!(q.pop_timeout(Duration::ZERO), Some(1));
        assert_eq!(q.pop_timeout(Duration::ZERO), None);
    }

    #[test]
    fn pop_timeout_wakes_on_push() {
        let q: std::sync::Arc<JobQueue<u32>> = std::sync::Arc::new(JobQueue::new(8, 8));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.try_push("a", 5, 7), Admission::Accepted);
        assert_eq!(t.join().unwrap(), Some(7));
    }
}
