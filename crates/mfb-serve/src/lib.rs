//! A crash-safe synthesis daemon for DCSA flow-based biochips.
//!
//! `mfb serve` keeps one [`StageCache`](mfb_core::prelude::StageCache)
//! warm across many synthesis requests — and across restarts. Clients
//! speak a line-delimited JSON protocol over TCP or a Unix socket:
//!
//! ```text
//! → {"op":"submit","job":{"bench":"PCR"},"timeout_secs":30,"trace":true}
//! ← {"ok":true,"id":"j1","state":"queued"}
//! → {"op":"result","id":"j1"}
//! ← {"ok":true,"id":"j1","state":"done","outcome":{...},"trace_jsonl":"..."}
//! ```
//!
//! The robustness story, layer by layer:
//!
//! * **Deadlines & cancellation** — every job runs under a
//!   [`Budget`](mfb_core::prelude::Budget) built at submission time;
//!   the synthesis stack polls it at stage boundaries and inside the SA
//!   and A* inner loops, so `cancel` and expired deadlines take effect
//!   promptly and surface as typed
//!   [`SynthesisError::DeadlineExceeded`](mfb_core::prelude::SynthesisError) /
//!   `Cancelled` — never as a perturbed result.
//! * **Backpressure** — admission is a bounded queue
//!   ([`queue::JobQueue`]) with per-client in-flight caps and
//!   FIFO-within-priority ordering; a full queue is a typed
//!   `queue_full` rejection the client can retry, not an unbounded
//!   memory balloon.
//! * **Retry** — transient failures (contained stage panics) are
//!   retried with jittered exponential backoff up to a per-job attempt
//!   cap; deterministic errors and budget interrupts fail fast.
//! * **Crash safety** — the stage cache is persisted to `--cache-dir`
//!   as a checksummed, versioned snapshot ([`snapshot`]) written with
//!   atomic renames. A `kill -9` loses at most the entries since the
//!   last snapshot; a corrupt entry is dropped and recomputed, never
//!   fatal.
//! * **Graceful shutdown** — `SIGTERM`/`SIGINT` (or the `drain` verb)
//!   stop admissions, finish the queue, snapshot, and exit.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod snapshot;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::protocol::{parse_request, ErrorKind, ProtocolError, Request, MAX_FRAME};
    pub use crate::queue::{Admission, JobQueue};
    pub use crate::server::{ServeSummary, Server, ServerConfig, ServerHandle};
    pub use crate::snapshot::{load_snapshot, save_snapshot, LoadReport};
}
