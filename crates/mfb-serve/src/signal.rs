//! Minimal `SIGTERM`/`SIGINT` latching, without a libc crate.
//!
//! The daemon only needs one bit of signal state: "a termination signal
//! arrived". The handler stores into a process-global `AtomicBool`
//! (atomic stores are async-signal-safe) and the accept loop polls
//! [`termination_requested`] between accepts — the classic
//! self-contained flag pattern, no pipes, no handler re-entry concerns.
//!
//! This is the single spot in the workspace that needs `unsafe`: the
//! `signal(2)` FFI declaration. It is confined to this module; the rest
//! of the crate stays under `#![deny(unsafe_code)]`.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// True once `SIGTERM` or `SIGINT` has been received (or
/// [`request_termination`] was called). Latches; never resets.
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::Acquire)
}

/// Sets the termination flag from process-local code (tests, the
/// `drain` verb path); equivalent to receiving `SIGTERM`.
pub fn request_termination() {
    TERMINATE.store(true, Ordering::Release);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::TERMINATE;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // An atomic store is on POSIX's async-signal-safe list.
        TERMINATE.store(true, Ordering::Release);
    }

    extern "C" {
        // `sighandler_t signal(int signum, sighandler_t handler);`
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the latching handler for `SIGTERM` and `SIGINT`.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is only given a valid signal number and a
        // handler that performs a single atomic store. glibc's `signal`
        // uses BSD semantics (the handler stays installed, syscalls
        // restart), which is exactly what the polling accept loop wants.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op on non-Unix targets; `drain` still works over the wire.
    pub fn install() {}
}

/// Installs termination-signal handlers (Unix) or does nothing
/// (elsewhere). Idempotent.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_latches_the_flag() {
        install_handlers();
        request_termination();
        assert!(termination_requested());
    }
}
