//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order. A
//! frame is at most [`MAX_FRAME`] bytes including the newline; anything
//! longer is rejected with a `bad_frame` error and the remainder of the
//! line is discarded, so an oversized (or hostile) client cannot balloon
//! server memory.
//!
//! Every malformed input — invalid JSON, a non-object, a missing or
//! unknown `"op"`, a field of the wrong type — yields a *typed* error
//! response, never a panic and never a closed connection. The property
//! tests in `tests/protocol_props.rs` pin this for arbitrary byte soup.

use serde_json::Value;
use std::fmt;

/// Hard cap on a request frame, bytes, newline included.
pub const MAX_FRAME: usize = 1 << 20;

/// Default priority for submissions that do not set one.
pub const DEFAULT_PRIORITY: u8 = 5;

/// Highest (numerically largest, least urgent) legal priority.
pub const MAX_PRIORITY: u8 = 9;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Enqueue one synthesis job. `job_json` is the re-encoded manifest
    /// entry (same schema as one element of an `mfb batch` manifest).
    /// In particular `{"job": {"assay": "<dsl>"}}` with a newline in the
    /// string submits an inline `.assay` program — self-contained, no
    /// file on the server needed — while a newline-free value is a path
    /// resolved on the server.
    Submit {
        /// Re-encoded JSON of the `"job"` object.
        job_json: String,
        /// Wall-clock budget in seconds, measured from admission.
        timeout_secs: Option<f64>,
        /// 0 (most urgent) ..= [`MAX_PRIORITY`]; FIFO within a level.
        priority: u8,
        /// Client identity for per-client in-flight caps.
        client: String,
        /// When true, the response to `result` carries a JSONL trace.
        trace: bool,
    },
    /// Poll a job's state.
    Status {
        /// The job id returned by `submit`.
        id: String,
    },
    /// Fetch a finished job's outcome (and trace, if requested).
    Result {
        /// The job id returned by `submit`.
        id: String,
    },
    /// Fire the job's cancellation token.
    Cancel {
        /// The job id returned by `submit`.
        id: String,
    },
    /// Server-wide counters: queue depth, job states, cache stats.
    Stats,
    /// Stop admissions, finish the queue, snapshot, shut down.
    Drain,
    /// Liveness probe.
    Ping,
}

/// Machine-readable error category, sent as the `"error"` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The frame was not parseable JSON, or exceeded [`MAX_FRAME`].
    BadFrame,
    /// The frame was JSON but violates the request schema.
    BadRequest,
    /// The request named an operation this server does not know.
    UnknownOp,
    /// The admission queue is at capacity; retry later.
    QueueFull,
    /// The client already has its maximum jobs in flight.
    ClientSaturated,
    /// No job with the given id.
    UnknownJob,
    /// The job exists but has not finished yet.
    NotReady,
    /// The server is draining and admits no new work.
    Draining,
    /// The job could not be run (synthesis failed); the message carries
    /// the typed synthesis error's display form.
    JobFailed,
}

impl ErrorKind {
    /// The stable wire token for this kind.
    pub fn token(self) -> &'static str {
        match self {
            ErrorKind::BadFrame => "bad_frame",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownOp => "unknown_op",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::ClientSaturated => "client_saturated",
            ErrorKind::UnknownJob => "unknown_job",
            ErrorKind::NotReady => "not_ready",
            ErrorKind::Draining => "draining",
            ErrorKind::JobFailed => "job_failed",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A typed protocol-level failure, rendered as an error response line.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ProtocolError {
            kind,
            message: message.into(),
        }
    }

    /// The single-line JSON response for this error.
    pub fn to_response(&self) -> String {
        format!(
            "{{\"ok\":false,\"error\":{},\"message\":{}}}",
            quote(self.kind.token()),
            quote(&self.message)
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// JSON-quotes a string (the escape subset JSON requires).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn bad_request(msg: impl Into<String>) -> ProtocolError {
    ProtocolError::new(ErrorKind::BadRequest, msg)
}

fn id_field(doc: &Value) -> Result<String, ProtocolError> {
    doc.get("id")
        .ok_or_else(|| bad_request("missing \"id\" field"))?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| bad_request("\"id\" must be a string"))
}

fn check_fields(doc: &Value, allowed: &[&str]) -> Result<(), ProtocolError> {
    let fields = doc
        .as_object()
        .ok_or_else(|| bad_request("request must be a JSON object"))?;
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(bad_request(format!(
                "unknown field {key:?} (expected one of {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Parses one request line. Every failure is a typed [`ProtocolError`];
/// this function never panics on any input (pinned by the property
/// tests).
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    if line.len() > MAX_FRAME {
        return Err(ProtocolError::new(
            ErrorKind::BadFrame,
            format!("frame exceeds {MAX_FRAME} bytes"),
        ));
    }
    let doc: Value = serde_json::from_str(line)
        .map_err(|e| ProtocolError::new(ErrorKind::BadFrame, format!("invalid JSON: {e}")))?;
    if doc.as_object().is_none() {
        return Err(bad_request("request must be a JSON object"));
    }
    let op = doc
        .get("op")
        .ok_or_else(|| bad_request("missing \"op\" field"))?
        .as_str()
        .ok_or_else(|| bad_request("\"op\" must be a string"))?;

    match op {
        "submit" => {
            check_fields(
                &doc,
                &["op", "job", "timeout_secs", "priority", "client", "trace"],
            )?;
            let job = doc
                .get("job")
                .ok_or_else(|| bad_request("submit needs a \"job\" object"))?;
            if job.as_object().is_none() {
                return Err(bad_request("\"job\" must be a JSON object"));
            }
            let job_json = serde_json::to_string(job)
                .map_err(|e| bad_request(format!("\"job\" cannot be re-encoded: {e}")))?;
            let timeout_secs = match doc.get("timeout_secs") {
                None => None,
                Some(v) => Some(
                    v.as_f64()
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .ok_or_else(|| bad_request("\"timeout_secs\" must be a positive number"))?,
                ),
            };
            let priority = match doc.get("priority") {
                None => DEFAULT_PRIORITY,
                Some(v) => {
                    let p = v
                        .as_u64()
                        .filter(|p| *p <= MAX_PRIORITY as u64)
                        .ok_or_else(|| {
                            bad_request(format!("\"priority\" must be 0..={MAX_PRIORITY}"))
                        })?;
                    p as u8
                }
            };
            let client = match doc.get("client") {
                None => "anon".to_owned(),
                Some(v) => v
                    .as_str()
                    .filter(|c| !c.is_empty() && c.len() <= 64)
                    .map(str::to_owned)
                    .ok_or_else(|| {
                        bad_request("\"client\" must be a non-empty string of at most 64 bytes")
                    })?,
            };
            let trace = match doc.get("trace") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| bad_request("\"trace\" must be a boolean"))?,
            };
            Ok(Request::Submit {
                job_json,
                timeout_secs,
                priority,
                client,
                trace,
            })
        }
        "status" => {
            check_fields(&doc, &["op", "id"])?;
            Ok(Request::Status {
                id: id_field(&doc)?,
            })
        }
        "result" => {
            check_fields(&doc, &["op", "id"])?;
            Ok(Request::Result {
                id: id_field(&doc)?,
            })
        }
        "cancel" => {
            check_fields(&doc, &["op", "id"])?;
            Ok(Request::Cancel {
                id: id_field(&doc)?,
            })
        }
        "stats" => {
            check_fields(&doc, &["op"])?;
            Ok(Request::Stats)
        }
        "drain" => {
            check_fields(&doc, &["op"])?;
            Ok(Request::Drain)
        }
        "ping" => {
            check_fields(&doc, &["op"])?;
            Ok(Request::Ping)
        }
        other => Err(ProtocolError::new(
            ErrorKind::UnknownOp,
            format!("unknown op {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        let r =
            parse_request(r#"{"op":"submit","job":{"bench":"PCR"},"timeout_secs":2.5}"#).unwrap();
        match r {
            Request::Submit {
                job_json,
                timeout_secs,
                priority,
                client,
                trace,
            } => {
                assert!(job_json.contains("PCR"));
                assert_eq!(timeout_secs, Some(2.5));
                assert_eq!(priority, DEFAULT_PRIORITY);
                assert_eq!(client, "anon");
                assert!(!trace);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"op":"status","id":"j1"}"#).unwrap(),
            Request::Status { id: "j1".into() }
        );
        assert_eq!(
            parse_request(r#"{"op":"result","id":"j1"}"#).unwrap(),
            Request::Result { id: "j1".into() }
        );
        assert_eq!(
            parse_request(r#"{"op":"cancel","id":"j1"}"#).unwrap(),
            Request::Cancel { id: "j1".into() }
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"drain"}"#).unwrap(), Request::Drain);
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
    }

    #[test]
    fn typed_errors_for_malformed_frames() {
        let kind = |line: &str| parse_request(line).unwrap_err().kind;
        assert_eq!(kind("not json"), ErrorKind::BadFrame);
        assert_eq!(kind("[1,2,3]"), ErrorKind::BadRequest);
        assert_eq!(kind("{}"), ErrorKind::BadRequest);
        assert_eq!(kind(r#"{"op":"mystery"}"#), ErrorKind::UnknownOp);
        assert_eq!(kind(r#"{"op":"status"}"#), ErrorKind::BadRequest);
        assert_eq!(kind(r#"{"op":"status","id":7}"#), ErrorKind::BadRequest);
        assert_eq!(kind(r#"{"op":"submit"}"#), ErrorKind::BadRequest);
        assert_eq!(
            kind(r#"{"op":"submit","job":{"bench":"PCR"},"timeout_secs":-1}"#),
            ErrorKind::BadRequest
        );
        assert_eq!(
            kind(r#"{"op":"submit","job":{"bench":"PCR"},"priority":99}"#),
            ErrorKind::BadRequest
        );
        assert_eq!(
            kind(r#"{"op":"stats","extra":true}"#),
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn error_responses_are_valid_json() {
        let e = ProtocolError::new(ErrorKind::BadFrame, "quote \" and \\ and\nnewline");
        let line = e.to_response();
        let doc: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(doc.get("error").and_then(Value::as_str), Some("bad_frame"));
    }

    #[test]
    fn oversized_frames_are_bad_frames() {
        let line = format!("{{\"op\":\"stats\",\"pad\":\"{}\"}}", "x".repeat(MAX_FRAME));
        assert_eq!(parse_request(&line).unwrap_err().kind, ErrorKind::BadFrame);
    }
}
