//! The daemon: listeners, worker pool, job registry, and dispatch.
//!
//! Threading model: one non-blocking accept loop (which also watches the
//! termination flag and drives shutdown), one detached thread per client
//! connection (blocking reads with a short timeout so it can observe
//! shutdown), and a fixed pool of worker threads pulling job ids off the
//! [`JobQueue`](crate::queue::JobQueue). All workers share one
//! [`StageCache`], so every submission after the first of a kind runs
//! warm — and the cache is persisted to `--cache-dir` so restarts stay
//! warm too.
//!
//! A job's life: `submit` parses the manifest entry, builds the job's
//! [`CancelToken`] and deadline **at admission time** (a job that waits
//! out its own deadline in the queue fails at the worker's first budget
//! checkpoint, so the 2× response-time bound holds regardless of queue
//! depth), and admits it through the bounded queue. The worker runs it
//! through [`run_batch`] under its budget; contained panics retry with
//! jittered exponential backoff up to the attempt cap, deterministic
//! errors and budget interrupts fail fast with their typed error.

use crate::protocol::{quote, ErrorKind, ProtocolError, Request, MAX_FRAME};
use crate::queue::{Admission, JobQueue};
use crate::signal;
use crate::snapshot::{self, LoadReport, SNAPSHOT_FILE};
use mfb_batch::prelude::*;
use mfb_core::prelude::*;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How the daemon is configured; see `mfb serve --help` for the flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// `host:port` for TCP, or a filesystem path (anything containing
    /// `/`) for a Unix socket.
    pub listen: String,
    /// Directory holding the persistent cache snapshot; `None` disables
    /// persistence.
    pub cache_dir: Option<PathBuf>,
    /// Worker threads; `0` means the `MFB_THREADS` limit.
    pub workers: usize,
    /// Bounded queue capacity (admissions beyond it are `queue_full`).
    pub queue_cap: usize,
    /// Per-client in-flight cap (queued + running).
    pub client_cap: usize,
    /// Attempt cap for retrying transient (panic) failures.
    pub retry_max: u32,
    /// Completed jobs between cache snapshots (`1` = snapshot after
    /// every job; crash loses at most the last job's entries).
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            cache_dir: None,
            workers: 0,
            queue_cap: 64,
            client_cap: 8,
            retry_max: 3,
            snapshot_every: 1,
        }
    }
}

/// What one `run` returned after a graceful shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeSummary {
    /// Jobs that reached `done`.
    pub done: u64,
    /// Jobs that reached a failure state (failed, cancelled, deadline).
    pub failed: u64,
    /// Entries in the final snapshot, when persistence is on.
    pub snapshot_entries: Option<usize>,
    /// What the startup snapshot load found.
    pub loaded: LoadReport,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
    Deadline,
}

impl JobState {
    fn token(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Deadline => "deadline",
        }
    }

    fn terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

#[derive(Debug)]
struct JobRecord {
    name: String,
    client: String,
    trace: bool,
    cancel: CancelToken,
    deadline: Option<Instant>,
    job: Option<BatchJob>,
    state: JobState,
    attempts: u32,
    outcome: Option<JobOutcome>,
    error: Option<String>,
    error_kind: Option<&'static str>,
    trace_jsonl: Option<String>,
}

#[derive(Debug)]
struct Shared {
    cfg: ServerConfig,
    cache: StageCache,
    queue: JobQueue<u64>,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    shutdown: AtomicBool,
    running: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    since_snapshot: AtomicU64,
    snap_lock: Mutex<()>,
    started: Instant,
    loaded: LoadReport,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.drain();
    }

    fn snapshot_path(&self) -> Option<PathBuf> {
        self.cfg.cache_dir.as_ref().map(|d| d.join(SNAPSHOT_FILE))
    }

    /// Writes a snapshot if one is due (or `force`). Serialized by
    /// `snap_lock` so concurrent workers cannot interleave writes; the
    /// rename itself is atomic either way.
    fn maybe_snapshot(&self, force: bool) -> Option<usize> {
        let path = self.snapshot_path()?;
        if !force {
            let due = self.since_snapshot.fetch_add(1, Ordering::AcqRel) + 1;
            if due < self.cfg.snapshot_every {
                return None;
            }
        }
        let _guard = lock(&self.snap_lock);
        self.since_snapshot.store(0, Ordering::Release);
        match snapshot::save_snapshot(&self.cache, &path) {
            Ok(n) => Some(n),
            Err(e) => {
                eprintln!("mfb-serve: snapshot write failed: {e}");
                None
            }
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, PathBuf),
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listener::Tcp(l) => write!(f, "Tcp({:?})", l.local_addr().ok()),
            #[cfg(unix)]
            Listener::Unix(_, p) => write!(f, "Unix({})", p.display()),
        }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until
/// graceful shutdown.
#[derive(Debug)]
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

/// A cheap handle onto a running (or bound) server, for tests and
/// embedders: request a drain, inspect shutdown.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Stops admissions and lets the server finish its queue and exit.
    pub fn drain(&self) {
        self.shared.begin_drain();
    }

    /// True once the server has fully shut down.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Binds the listener and warms the cache from `--cache-dir` (when
    /// set). Corrupt or missing snapshots never fail the bind — they
    /// just mean a colder start.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = if cfg.listen.contains('/') {
            #[cfg(unix)]
            {
                let path = PathBuf::from(&cfg.listen);
                // A stale socket file from a crashed predecessor would
                // make bind fail with AddrInUse; remove it. (A *live*
                // predecessor is indistinguishable here — deployments
                // that need that guard use a pidfile or a supervisor.)
                let _ = std::fs::remove_file(&path);
                let l = std::os::unix::net::UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                Listener::Unix(l, path)
            }
            #[cfg(not(unix))]
            {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        } else {
            let addr: SocketAddr = cfg.listen.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("--listen {:?}: {e}", cfg.listen),
                )
            })?;
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        };

        let cache = StageCache::new();
        let mut loaded = LoadReport::default();
        if let Some(dir) = &cfg.cache_dir {
            std::fs::create_dir_all(dir)?;
            match snapshot::load_snapshot(&cache, &dir.join(SNAPSHOT_FILE)) {
                Ok(report) => loaded = report,
                Err(e) => eprintln!("mfb-serve: snapshot load failed, starting cold: {e}"),
            }
        }

        let workers = if cfg.workers == 0 {
            mfb_model::par::thread_limit().max(1)
        } else {
            cfg.workers
        };
        let queue = JobQueue::new(cfg.queue_cap, cfg.client_cap);
        let shared = Arc::new(Shared {
            cfg: ServerConfig { workers, ..cfg },
            cache,
            queue,
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            running: AtomicU64::new(0),
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            since_snapshot: AtomicU64::new(0),
            snap_lock: Mutex::new(()),
            started: Instant::now(),
            loaded,
        });
        Ok(Server { listener, shared })
    }

    /// The bound TCP address, when listening on TCP (tests bind port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(..) => None,
        }
    }

    /// A handle for driving the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until `SIGTERM`/`SIGINT` or a `drain` request, then
    /// finishes the queue, writes a final snapshot, and returns.
    pub fn run(self) -> io::Result<ServeSummary> {
        signal::install_handlers();
        let shared = &self.shared;

        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers {
            let shared = Arc::clone(shared);
            let handle = std::thread::Builder::new()
                .name(format!("mfb-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?;
            workers.push(handle);
        }

        loop {
            if (signal::termination_requested() || shared.draining.load(Ordering::SeqCst))
                && !shared.queue.is_draining()
            {
                shared.begin_drain();
            }
            if shared.queue.is_draining()
                && shared.queue.is_empty()
                && shared.running.load(Ordering::SeqCst) == 0
            {
                break;
            }
            match self.listener.accept_nonblocking() {
                Ok(Some(conn)) => {
                    let shared = Arc::clone(shared);
                    // Connection threads are detached; they exit on EOF
                    // or when the shutdown flag flips.
                    let _ = std::thread::Builder::new()
                        .name("mfb-serve-conn".to_owned())
                        .spawn(move || conn.serve(&shared));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => {
                    eprintln!("mfb-serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }

        shared.shutdown.store(true, Ordering::SeqCst);
        for w in workers {
            let _ = w.join();
        }
        let snapshot_entries = shared.maybe_snapshot(true);
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeSummary {
            done: shared.done.load(Ordering::SeqCst),
            failed: shared.failed.load(Ordering::SeqCst),
            snapshot_entries,
            loaded: shared.loaded,
        })
    }
}

enum Conn {
    Tcp(std::net::TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    fn serve(self, shared: &Arc<Shared>) {
        let r = match self {
            Conn::Tcp(s) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_read_timeout(Some(Duration::from_millis(100)));
                s.try_clone()
                    .map(|w| serve_stream(BufReader::new(s), w, shared))
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.set_nonblocking(false);
                let _ = s.set_read_timeout(Some(Duration::from_millis(100)));
                s.try_clone()
                    .map(|w| serve_stream(BufReader::new(s), w, shared))
            }
        };
        if let Err(e) = r {
            eprintln!("mfb-serve: connection setup failed: {e}");
        }
    }
}

impl Listener {
    fn accept_nonblocking(&self) -> io::Result<Option<Conn>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Conn::Tcp(s))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Ok(Some(Conn::Unix(s))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// One read frame: a complete line, an oversized line (already
/// discarded through its newline), or end-of-stream.
enum Frame {
    Line(String),
    Oversized,
    Eof,
}

/// Reads one newline-terminated frame, at most [`MAX_FRAME`] bytes.
/// Returns `Eof` when the peer closed or the server is shutting down.
fn read_frame(reader: &mut impl BufRead, shared: &Shared) -> Frame {
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return Frame::Eof,
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Frame::Eof;
                }
                continue;
            }
            Err(_) => return Frame::Eof,
        };
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if !discarding {
            buf.extend_from_slice(&chunk[..take.min(chunk.len())]);
        }
        reader.consume(take);
        if newline.is_some() {
            if discarding {
                return Frame::Oversized;
            }
            buf.pop(); // the newline
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return match String::from_utf8(buf) {
                Ok(s) => Frame::Line(s),
                // Invalid UTF-8 is a malformed frame, not a dead peer.
                Err(_) => Frame::Oversized,
            };
        }
        if buf.len() > MAX_FRAME {
            buf.clear();
            discarding = true;
        }
    }
}

fn serve_stream(mut reader: impl BufRead, mut writer: impl Write, shared: &Arc<Shared>) {
    loop {
        let line = match read_frame(&mut reader, shared) {
            Frame::Eof => return,
            Frame::Oversized => ProtocolError::new(
                ErrorKind::BadFrame,
                format!("frame exceeds {MAX_FRAME} bytes or is not UTF-8"),
            )
            .to_response(),
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match crate::protocol::parse_request(&line) {
                    Ok(req) => dispatch(shared, req),
                    Err(e) => e.to_response(),
                }
            }
        };
        if writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

fn parse_job_id(id: &str) -> Option<u64> {
    id.strip_prefix('j')?.parse().ok()
}

fn error_kind_token(e: &SynthesisError) -> &'static str {
    match e {
        SynthesisError::DeadlineExceeded => "deadline_exceeded",
        SynthesisError::Cancelled => "cancelled",
        SynthesisError::StagePanic { .. } => "stage_panic",
        SynthesisError::Sched(_) => "sched",
        SynthesisError::Place(_) => "place",
        SynthesisError::Route { .. } => "route",
        _ => "synthesis",
    }
}

fn dispatch(shared: &Arc<Shared>, req: Request) -> String {
    match req {
        Request::Ping => "{\"ok\":true,\"pong\":true}".to_owned(),
        Request::Drain => {
            shared.begin_drain();
            "{\"ok\":true,\"draining\":true}".to_owned()
        }
        Request::Stats => stats_response(shared),
        Request::Submit {
            job_json,
            timeout_secs,
            priority,
            client,
            trace,
        } => submit(shared, &job_json, timeout_secs, priority, &client, trace)
            .unwrap_or_else(|e| e.to_response()),
        Request::Status { id } => with_job(shared, &id, |id, rec| {
            let mut out = format!(
                "{{\"ok\":true,\"id\":{},\"name\":{},\"state\":{},\"attempts\":{}",
                quote(&format!("j{id}")),
                quote(&rec.name),
                quote(rec.state.token()),
                rec.attempts
            );
            if let Some(err) = &rec.error {
                out.push_str(&format!(
                    ",\"error\":{},\"error_kind\":{}",
                    quote(err),
                    quote(rec.error_kind.unwrap_or("synthesis"))
                ));
            }
            out.push('}');
            Ok(out)
        }),
        Request::Result { id } => with_job(shared, &id, |id, rec| {
            if !rec.state.terminal() {
                return Err(ProtocolError::new(
                    ErrorKind::NotReady,
                    format!("job j{id} is {}", rec.state.token()),
                ));
            }
            let mut out = format!(
                "{{\"ok\":true,\"id\":{},\"state\":{},\"attempts\":{}",
                quote(&format!("j{id}")),
                quote(rec.state.token()),
                rec.attempts
            );
            if let Some(outcome) = &rec.outcome {
                match serde_json::to_string(outcome) {
                    Ok(json) => out.push_str(&format!(",\"outcome\":{json}")),
                    Err(e) => {
                        return Err(ProtocolError::new(
                            ErrorKind::JobFailed,
                            format!("outcome serialization failed: {e}"),
                        ))
                    }
                }
            }
            if let Some(err) = &rec.error {
                out.push_str(&format!(
                    ",\"error\":{},\"error_kind\":{}",
                    quote(err),
                    quote(rec.error_kind.unwrap_or("synthesis"))
                ));
            }
            if let Some(trace) = &rec.trace_jsonl {
                out.push_str(&format!(",\"trace_jsonl\":{}", quote(trace)));
            }
            out.push('}');
            Ok(out)
        }),
        Request::Cancel { id } => with_job(shared, &id, |id, rec| {
            rec.cancel.cancel();
            Ok(format!(
                "{{\"ok\":true,\"id\":{},\"state\":{}}}",
                quote(&format!("j{id}")),
                quote(rec.state.token())
            ))
        }),
        // `Request` is non_exhaustive for forward compatibility; a verb
        // added to the parser without a dispatch arm lands here.
        #[allow(unreachable_patterns)]
        _ => ProtocolError::new(ErrorKind::UnknownOp, "verb not implemented").to_response(),
    }
}

fn with_job(
    shared: &Shared,
    id: &str,
    f: impl FnOnce(u64, &mut JobRecord) -> Result<String, ProtocolError>,
) -> String {
    let Some(n) = parse_job_id(id) else {
        return ProtocolError::new(ErrorKind::UnknownJob, format!("no job {id:?}")).to_response();
    };
    let mut jobs = lock(&shared.jobs);
    match jobs.get_mut(&n) {
        Some(rec) => f(n, rec).unwrap_or_else(|e| e.to_response()),
        None => ProtocolError::new(ErrorKind::UnknownJob, format!("no job {id:?}")).to_response(),
    }
}

fn submit(
    shared: &Arc<Shared>,
    job_json: &str,
    timeout_secs: Option<f64>,
    priority: u8,
    client: &str,
    trace: bool,
) -> Result<String, ProtocolError> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ProtocolError::new(
            ErrorKind::Draining,
            "server is draining",
        ));
    }
    let manifest = format!("[{job_json}]");
    let jobs = parse_manifest(&manifest, Path::new("."))
        .map_err(|e| ProtocolError::new(ErrorKind::BadRequest, e.to_string()))?;
    if jobs.len() != 1 {
        return Err(ProtocolError::new(
            ErrorKind::BadRequest,
            "submit takes exactly one job (use \"repeat\": 1)",
        ));
    }
    let job = match jobs.into_iter().next() {
        Some(j) => j,
        None => unreachable!("len checked above"),
    };

    let cancel = CancelToken::new();
    let deadline =
        timeout_secs.and_then(|s| Instant::now().checked_add(Duration::from_secs_f64(s)));
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let record = JobRecord {
        name: job.name.clone(),
        client: client.to_owned(),
        trace,
        cancel,
        deadline,
        job: Some(job),
        state: JobState::Queued,
        attempts: 0,
        outcome: None,
        error: None,
        error_kind: None,
        trace_jsonl: None,
    };
    lock(&shared.jobs).insert(id, record);

    match shared.queue.try_push(client, priority, id) {
        Admission::Accepted => Ok(format!(
            "{{\"ok\":true,\"id\":{},\"state\":\"queued\"}}",
            quote(&format!("j{id}"))
        )),
        rejection => {
            lock(&shared.jobs).remove(&id);
            Err(match rejection {
                Admission::QueueFull { cap } => ProtocolError::new(
                    ErrorKind::QueueFull,
                    format!("queue is at its capacity of {cap}; retry later"),
                ),
                Admission::ClientSaturated { cap } => ProtocolError::new(
                    ErrorKind::ClientSaturated,
                    format!("client {client:?} already has {cap} jobs in flight"),
                ),
                Admission::Draining => {
                    ProtocolError::new(ErrorKind::Draining, "server is draining")
                }
                Admission::Accepted => unreachable!("accepted handled above"),
            })
        }
    }
}

fn stats_response(shared: &Shared) -> String {
    let (mut queued, mut running, mut done, mut failed, mut cancelled, mut deadline) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    {
        let jobs = lock(&shared.jobs);
        for rec in jobs.values() {
            match rec.state {
                JobState::Queued => queued += 1,
                JobState::Running => running += 1,
                JobState::Done => done += 1,
                JobState::Failed => failed += 1,
                JobState::Cancelled => cancelled += 1,
                JobState::Deadline => deadline += 1,
            }
        }
    }
    let cache_json =
        serde_json::to_string(&shared.cache.stats()).unwrap_or_else(|_| "null".to_owned());
    format!(
        "{{\"ok\":true,\"uptime_secs\":{:.3},\"queue_depth\":{},\"draining\":{},\
         \"jobs\":{{\"queued\":{queued},\"running\":{running},\"done\":{done},\
         \"failed\":{failed},\"cancelled\":{cancelled},\"deadline\":{deadline}}},\
         \"cache\":{{\"ready_entries\":{},\"stats\":{cache_json}}}}}",
        shared.started.elapsed().as_secs_f64(),
        shared.queue.len(),
        shared.draining.load(Ordering::SeqCst),
        shared.cache.ready_entries(),
    )
}

/// Deterministic per-(job, attempt) jitter: a splitmix64 step. "Jitter"
/// here decorrelates concurrent retries; it does not need to be random,
/// only spread out.
fn backoff(id: u64, attempt: u32) -> Duration {
    let base_ms = 20u64.saturating_mul(1 << (attempt.min(4) - 1).min(4));
    let mut z = id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(attempt as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let jitter_ms = (z ^ (z >> 31)) % base_ms.max(1);
    Duration::from_millis((base_ms + jitter_ms).min(500))
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match shared.queue.pop_timeout(Duration::from_millis(50)) {
            Some(id) => run_job(shared, id),
            None => {
                if shared.queue.is_draining() && shared.queue.is_empty() {
                    return;
                }
            }
        }
    }
}

/// Runs one job to a terminal state: budget from its admission-time
/// deadline and cancel token, retry-with-backoff for contained panics,
/// fail-fast for typed errors.
fn run_job(shared: &Arc<Shared>, id: u64) {
    let (job, trace, client) = {
        let mut jobs = lock(&shared.jobs);
        let Some(rec) = jobs.get_mut(&id) else {
            return;
        };
        rec.state = JobState::Running;
        let mut budget = match rec.deadline {
            Some(d) => Budget::with_deadline(d),
            None => Budget::unlimited(),
        };
        budget = budget.with_cancel(rec.cancel.clone());
        let job = rec.job.take().map(|j| j.with_budget(budget));
        (job, rec.trace, rec.client.clone())
    };
    let Some(job) = job else {
        finish_job(
            shared,
            id,
            &client,
            Err(SynthesisError::StagePanic {
                stage: "serve",
                message: "job payload missing (already taken)".to_owned(),
            }),
            1,
            None,
            None,
        );
        return;
    };
    shared.running.fetch_add(1, Ordering::SeqCst);

    let mut attempts = 0u32;
    let (result, outcome, trace_jsonl) = loop {
        attempts += 1;
        let collector = if trace {
            Some(mfb_obs::TraceCollector::new())
        } else {
            None
        };
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let run_once = || run_batch(std::slice::from_ref(&job), &shared.cache);
            match &collector {
                Some(c) => mfb_obs::with_collector(c, run_once),
                None => run_once(),
            }
        }));
        let trace_jsonl = collector.map(|c| mfb_obs::export::to_jsonl(&c.finish().events));
        match caught {
            Ok(mut run) => {
                let solution = run.solutions.pop();
                let outcome = run.report.outcomes.pop();
                match solution {
                    Some(Ok(_)) => break (Ok(()), outcome, trace_jsonl),
                    Some(Err(e)) => {
                        // Typed errors fail fast: deterministic errors
                        // reproduce on retry, and budget interrupts are
                        // the budget speaking, not a flake.
                        break (Err(e), outcome, trace_jsonl);
                    }
                    None => {
                        break (
                            Err(SynthesisError::StagePanic {
                                stage: "batch",
                                message: "executor returned no result".to_owned(),
                            }),
                            outcome,
                            trace_jsonl,
                        )
                    }
                }
            }
            Err(payload) => {
                let e = SynthesisError::StagePanic {
                    stage: "batch",
                    message: panic_message(payload),
                };
                if attempts >= shared.cfg.retry_max.max(1) {
                    break (Err(e), None, trace_jsonl);
                }
                // Transient: a contained panic may be environmental
                // (allocation pressure, a poisoned scratch arena).
                // Back off with per-(job, attempt) jitter and retry.
                std::thread::sleep(backoff(id, attempts));
            }
        }
    };

    shared.running.fetch_sub(1, Ordering::SeqCst);
    finish_job(shared, id, &client, result, attempts, outcome, trace_jsonl);
}

fn finish_job(
    shared: &Arc<Shared>,
    id: u64,
    client: &str,
    result: Result<(), SynthesisError>,
    attempts: u32,
    outcome: Option<JobOutcome>,
    trace_jsonl: Option<String>,
) {
    {
        let mut jobs = lock(&shared.jobs);
        if let Some(rec) = jobs.get_mut(&id) {
            rec.attempts = attempts;
            rec.outcome = outcome;
            rec.trace_jsonl = trace_jsonl;
            match &result {
                Ok(()) => rec.state = JobState::Done,
                Err(e) => {
                    rec.state = match e {
                        SynthesisError::DeadlineExceeded => JobState::Deadline,
                        SynthesisError::Cancelled => JobState::Cancelled,
                        _ => JobState::Failed,
                    };
                    rec.error = Some(e.to_string());
                    rec.error_kind = Some(error_kind_token(e));
                }
            }
        }
    }
    match result {
        Ok(()) => shared.done.fetch_add(1, Ordering::SeqCst),
        Err(_) => shared.failed.fetch_add(1, Ordering::SeqCst),
    };
    shared.queue.release_client(client);
    shared.maybe_snapshot(false);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_round_trip() {
        assert_eq!(parse_job_id("j42"), Some(42));
        assert_eq!(parse_job_id("42"), None);
        assert_eq!(parse_job_id("jx"), None);
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        let a1 = backoff(7, 1);
        let a2 = backoff(7, 2);
        let a3 = backoff(7, 5);
        assert!(a1 >= Duration::from_millis(20));
        assert!(a2 >= Duration::from_millis(40));
        assert!(a3 <= Duration::from_millis(500));
        // Different jobs see different jitter at the same attempt.
        assert_ne!(backoff(1, 1), backoff(2, 1));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServerConfig::default();
        assert!(cfg.queue_cap > 0 && cfg.client_cap > 0 && cfg.retry_max > 0);
    }
}
