//! Crash-safe persistence for the stage cache.
//!
//! On-disk format (one file, `cache.snap`, inside `--cache-dir`):
//!
//! ```text
//! {"magic":"mfb-cache-snapshot","version":1}
//! 9c1385b47cbe3a07 {"stage":"schedule","key":1234,...}
//! 51c9a2f0d88e11ab {"stage":"placement","key":5678,...}
//! ```
//!
//! Line 1 is the header; every following line is an FNV-1a-64 checksum
//! (16 lowercase hex digits) of the entry JSON, a single space, and the
//! entry itself (a [`SnapshotEntry`] produced by
//! [`StageCache::export_entries`]).
//!
//! The two failure-model rules:
//!
//! * **Writes are atomic** — the snapshot is written to a `.tmp` sibling,
//!   fsynced, and renamed over the old file, so a crash mid-write leaves
//!   either the old snapshot or the new one, never a torn file.
//! * **Corruption is never fatal** — a bad checksum, unparseable entry,
//!   truncated tail, or wrong-version header drops the affected entries
//!   (counted in [`LoadReport::dropped`]) and the cache simply recomputes
//!   them. The cache is a performance artifact; losing it costs time,
//!   not correctness. Imported schedules additionally re-run the
//!   independent validator on first use (see
//!   [`StageCache::import_entry`]), so even a *plausible* forged entry
//!   cannot smuggle an unchecked schedule into a solution.

use mfb_core::prelude::{SnapshotEntry, StageCache};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// The header magic string.
pub const MAGIC: &str = "mfb-cache-snapshot";

/// The on-disk format version this build reads and writes.
pub const VERSION: u64 = 1;

/// File name used inside a cache directory.
pub const SNAPSHOT_FILE: &str = "cache.snap";

/// What a [`load_snapshot`] call found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries imported into the cache.
    pub imported: usize,
    /// Lines dropped: bad checksum, unparseable, or rejected by the
    /// cache (occupied slot, unknown stage).
    pub dropped: usize,
}

/// FNV-1a 64-bit, the checksum guarding each snapshot line.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes the cache's finished entries to `path`, atomically:
/// `path.tmp` is written, fsynced, and renamed over `path`. Returns the
/// number of entries written.
pub fn save_snapshot(cache: &StageCache, path: &Path) -> io::Result<usize> {
    let entries = cache.export_entries();
    let mut text = String::new();
    text.push_str(&format!(
        "{{\"magic\":\"{MAGIC}\",\"version\":{VERSION}}}\n"
    ));
    for entry in &entries {
        let json = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        text.push_str(&format!("{:016x} {json}\n", fnv1a64(json.as_bytes())));
    }

    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(entries.len())
}

/// Loads a snapshot into the cache. Missing file, wrong header, bad
/// checksums, and malformed entries are all tolerated — affected
/// entries are dropped and will be recomputed. Only genuine I/O errors
/// on an *existing, readable path* surface as `Err`.
pub fn load_snapshot(cache: &StageCache, path: &Path) -> io::Result<LoadReport> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadReport::default()),
        Err(e) => return Err(e),
    };
    let mut lines = text.lines();
    let mut report = LoadReport::default();

    let header_ok = lines.next().is_some_and(|h| {
        serde_json::from_str::<serde_json::Value>(h).is_ok_and(|doc| {
            doc.get("magic").and_then(|m| m.as_str()) == Some(MAGIC)
                && doc.get("version").and_then(|v| v.as_u64()) == Some(VERSION)
        })
    });
    if !header_ok {
        // A foreign or future-format file: import nothing, count every
        // non-empty line as dropped, keep running.
        report.dropped = text.lines().filter(|l| !l.trim().is_empty()).count();
        return Ok(report);
    }

    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Some((sum_hex, json)) = line.split_once(' ') else {
            report.dropped += 1;
            continue;
        };
        let Ok(sum) = u64::from_str_radix(sum_hex, 16) else {
            report.dropped += 1;
            continue;
        };
        if sum != fnv1a64(json.as_bytes()) {
            report.dropped += 1;
            continue;
        }
        let Ok(entry) = serde_json::from_str::<SnapshotEntry>(json) else {
            report.dropped += 1;
            continue;
        };
        if cache.import_entry(&entry) {
            report.imported += 1;
        } else {
            report.dropped += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_core::prelude::*;
    use mfb_model::prelude::*;

    fn synthesized_cache() -> StageCache {
        let (graph, alloc) = mfb_bench_suite::benchmark_by_name("PCR")
            .map(|b| {
                let components = b.components(&ComponentLibrary::default());
                (b.graph, components)
            })
            .expect("PCR is a Table-I bench");
        let cache = StageCache::new();
        let wash = LogLinearWash::paper_calibrated();
        Synthesizer::paper_dcsa()
            .synthesize_cached(&graph, &alloc, &wash, &cache)
            .expect("PCR synthesizes");
        cache
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mfb-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trips_every_ready_entry() {
        let cache = synthesized_cache();
        let dir = tmp_dir("roundtrip");
        let path = dir.join(SNAPSHOT_FILE);
        let written = save_snapshot(&cache, &path).unwrap();
        assert_eq!(written, cache.ready_entries());
        assert!(written > 0);

        let warm = StageCache::new();
        let report = load_snapshot(&warm, &path).unwrap();
        assert_eq!(report.imported, written);
        assert_eq!(report.dropped, 0);
        assert_eq!(warm.ready_entries(), written);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_clean_empty_load() {
        let cache = StageCache::new();
        let report = load_snapshot(&cache, Path::new("/nonexistent/dir/cache.snap")).unwrap();
        assert_eq!(report, LoadReport::default());
    }

    #[test]
    fn corrupt_lines_are_dropped_not_fatal() {
        let cache = synthesized_cache();
        let dir = tmp_dir("corrupt");
        let path = dir.join(SNAPSHOT_FILE);
        let written = save_snapshot(&cache, &path).unwrap();

        // Flip one byte inside the first entry's JSON: its checksum no
        // longer matches, so exactly that entry is dropped.
        let mut text = fs::read_to_string(&path).unwrap();
        let entry_start = text.find('\n').unwrap() + 1;
        let json_start = text[entry_start..].find(' ').unwrap() + entry_start + 1;
        let flip = json_start + 20;
        let original = text.as_bytes()[flip];
        let replacement = if original == b'7' { b'8' } else { b'7' };
        let mut bytes = text.into_bytes();
        bytes[flip] = replacement;
        text = String::from_utf8(bytes).unwrap();
        // Append a truncated tail, as a crash mid-append would leave.
        text.push_str("deadbeef {\"stage\":\"sched");
        fs::write(&path, &text).unwrap();

        let warm = StageCache::new();
        let report = load_snapshot(&warm, &path).unwrap();
        assert_eq!(report.imported + report.dropped, written + 1);
        assert!(report.dropped >= 2, "flipped entry + truncated tail");
        assert!(report.imported < written);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_header_imports_nothing() {
        let dir = tmp_dir("foreign");
        let path = dir.join(SNAPSHOT_FILE);
        fs::write(&path, "{\"magic\":\"other\",\"version\":1}\nstuff\n").unwrap();
        let cache = StageCache::new();
        let report = load_snapshot(&cache, &path).unwrap();
        assert_eq!(report.imported, 0);
        assert_eq!(report.dropped, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_cache_reproduces_cold_results_byte_identically() {
        let (graph, alloc) = mfb_bench_suite::benchmark_by_name("PCR")
            .map(|b| {
                let components = b.components(&ComponentLibrary::default());
                (b.graph, components)
            })
            .expect("PCR is a Table-I bench");
        let wash = LogLinearWash::paper_calibrated();
        let synth = Synthesizer::paper_dcsa();

        let cold_cache = StageCache::new();
        let cold = synth
            .synthesize_cached(&graph, &alloc, &wash, &cold_cache)
            .unwrap();

        let dir = tmp_dir("identical");
        let path = dir.join(SNAPSHOT_FILE);
        save_snapshot(&cold_cache, &path).unwrap();

        let warm_cache = StageCache::new();
        load_snapshot(&warm_cache, &path).unwrap();
        let before = warm_cache.stats();
        let warm = synth
            .synthesize_cached(&graph, &alloc, &wash, &warm_cache)
            .unwrap();
        let delta = warm_cache.stats() - before;
        assert!(delta.schedule_hits > 0, "imported schedule must hit");
        assert_eq!(cold, warm, "warm result must be byte-identical");
        let _ = fs::remove_dir_all(&dir);
    }
}
