//! JSON job manifests for `mfb batch`.
//!
//! A manifest is a JSON document describing a list of [`BatchJob`]s:
//!
//! ```json
//! {
//!   "jobs": [
//!     { "bench": "PCR" },
//!     { "bench": "PCR", "seed": 7 },
//!     { "bench": "IVD", "repeat": 2 },
//!     { "assay": "my_assay.txt", "flow": "baseline", "t_c_secs": 3.0 }
//!   ]
//! }
//! ```
//!
//! A bare top-level array is accepted too. Each entry names its workload
//! with exactly one of:
//!
//! * `"bench"` — a Table-I benchmark name (`"PCR"`, `"IVD"`, `"CPA"`,
//!   `"Synthetic1"`…`"Synthetic4"`, case-insensitive, `"synth3"` accepted);
//! * `"assay"` — an assay in the `.assay` DSL, given either as a path to
//!   a file (relative paths resolve against the manifest's directory) or
//!   as inline source (any value containing a newline is treated as
//!   source, not a path). Either way the assay must carry an `alloc`
//!   line, since a batch job needs concrete components; its `flow` and
//!   `defect` statements are honored, with the entry-level fields below
//!   taking precedence.
//!
//! Optional per-entry fields:
//!
//! * `"name"` — display-name override (defaults to the bench name, the
//!   assay file stem, or an inline assay's declared name);
//! * `"flow"` — `"dcsa"`/`"ours"` (default) or `"ba"`/`"baseline"`;
//!   overrides the assay file's own `flow` statement;
//! * `"seed"` — annealing seed override;
//! * `"t_c_secs"` — transport-time constant override, seconds;
//! * `"defects"` — an inline [`DefectMap`] JSON object;
//! * `"repeat"` — clone the job *k* times (names gain a `#k` suffix when
//!   `k > 1`); identical clones share every cache key, so repeats are the
//!   simplest way to exercise warm-cache throughput.
//!
//! Parsing is strict: entries must be objects, fields outside the list
//! above are rejected by name, out-of-range values (`"repeat": 0`,
//! `"t_c_secs": 0`) are typed schema errors, and JSON syntax errors carry
//! `line L, column C` positions into the document.

use crate::executor::BatchJob;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use serde_json::Value;
use std::fmt;
use std::path::Path;

/// Why a manifest could not be turned into jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManifestError {
    /// The document is not valid JSON.
    Json(String),
    /// The document parsed but violates the manifest schema; the string
    /// names the offending entry and field.
    Schema(String),
    /// An `"assay"` file could not be read or parsed.
    Assay(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Json(m) => write!(f, "manifest is not valid JSON: {m}"),
            ManifestError::Schema(m) => write!(f, "manifest schema error: {m}"),
            ManifestError::Assay(m) => write!(f, "assay error: {m}"),
        }
    }
}

impl std::error::Error for ManifestError {}

fn schema(msg: impl Into<String>) -> ManifestError {
    ManifestError::Schema(msg.into())
}

/// Every field a job entry may carry. Anything else is rejected with a
/// pointed error instead of being silently ignored — a typo like
/// `"sead": 7` would otherwise change results without a trace.
const KNOWN_FIELDS: &[&str] = &[
    "bench", "assay", "name", "flow", "seed", "t_c_secs", "defects", "repeat",
];

/// Rewrites the JSON shim's `at byte N` positions as `line L, column C`
/// so errors point into the manifest the way editors count.
fn locate_json_error(text: &str, msg: &str) -> String {
    let Some(idx) = msg.rfind("byte ") else {
        return msg.to_owned();
    };
    let digits: String = msg[idx + 5..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    let Ok(pos) = digits.parse::<usize>() else {
        return msg.to_owned();
    };
    let pos = pos.min(text.len());
    let line = 1 + text[..pos].bytes().filter(|&b| b == b'\n').count();
    let column = 1 + text[..pos].rfind('\n').map_or(pos, |nl| pos - nl - 1);
    format!("{msg} (line {line}, column {column})")
}

/// Parses a manifest document into jobs, in document order (repeats
/// expand in place). `base_dir` anchors relative `"assay"` paths.
pub fn parse_manifest(text: &str, base_dir: &Path) -> Result<Vec<BatchJob>, ManifestError> {
    let doc: Value = serde_json::from_str(text)
        .map_err(|e| ManifestError::Json(locate_json_error(text, &e.to_string())))?;
    let entries = match doc.get("jobs") {
        Some(jobs) => jobs
            .as_array()
            .ok_or_else(|| schema("\"jobs\" must be an array"))?,
        None => doc
            .as_array()
            .ok_or_else(|| schema("expected {\"jobs\": [...]} or a top-level array"))?,
    };
    if entries.is_empty() {
        return Err(schema("manifest contains no jobs"));
    }

    let library = ComponentLibrary::default();
    let mut out = Vec::new();
    for (idx, entry) in entries.iter().enumerate() {
        let job = parse_entry(entry, idx, base_dir, &library)?;
        let repeat = match entry.get("repeat") {
            None => 1,
            Some(v) => {
                let k = v.as_u64().ok_or_else(|| {
                    schema(format!("job {idx}: \"repeat\" must be a positive integer"))
                })?;
                if k == 0 {
                    return Err(schema(format!("job {idx}: \"repeat\" must be at least 1")));
                }
                k
            }
        };
        if repeat == 1 {
            out.push(job);
        } else {
            for k in 1..=repeat {
                let mut clone = job.clone();
                clone.name = format!("{}#{k}", job.name);
                out.push(clone);
            }
        }
    }
    Ok(out)
}

fn parse_entry(
    entry: &Value,
    idx: usize,
    base_dir: &Path,
    library: &ComponentLibrary,
) -> Result<BatchJob, ManifestError> {
    let fields = entry
        .as_object()
        .ok_or_else(|| schema(format!("job {idx}: each entry must be a JSON object")))?;
    for (key, _) in fields {
        if !KNOWN_FIELDS.contains(&key.as_str()) {
            return Err(schema(format!(
                "job {idx}: unknown field {key:?} (expected one of {})",
                KNOWN_FIELDS.join(", ")
            )));
        }
    }

    let bench = entry.get("bench").map(|v| {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| schema(format!("job {idx}: \"bench\" must be a string")))
    });
    let assay = entry.get("assay").map(|v| {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| schema(format!("job {idx}: \"assay\" must be a string")))
    });

    let (default_name, graph, components, file_flow, file_defects) = match (bench, assay) {
        (Some(bench), None) => {
            let bench = bench?;
            let b = mfb_bench_suite::benchmark_by_name(&bench).ok_or_else(|| {
                schema(format!(
                    "job {idx}: unknown benchmark {bench:?} (expected a Table-I name)"
                ))
            })?;
            let components = b.components(library);
            (
                b.name.to_owned(),
                b.graph,
                components,
                FlowDecl::default(),
                DefectMap::pristine(),
            )
        }
        (None, Some(assay)) => {
            let assay = assay?;
            // A value with a newline cannot be a path: treat it as inline
            // DSL source so manifests (and `mfb serve` submissions built
            // on them) can carry self-contained assays.
            let (text, origin, default_name) = if assay.contains('\n') {
                (assay, format!("job {idx} inline assay"), None)
            } else {
                let path = base_dir.join(&assay);
                let text = std::fs::read_to_string(&path).map_err(|e| {
                    ManifestError::Assay(format!("job {idx}: cannot read {}: {e}", path.display()))
                })?;
                let stem = Path::new(&assay)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or(assay);
                (text, format!("job {idx}: {}", path.display()), Some(stem))
            };
            let file =
                parse_assay(&text).map_err(|e| ManifestError::Assay(format!("{origin}: {e}")))?;
            let allocation = file.allocation.ok_or_else(|| {
                ManifestError::Assay(format!(
                    "{origin} has no `alloc` line (batch jobs need one)"
                ))
            })?;
            let components = allocation.instantiate(library);
            let name = default_name.unwrap_or_else(|| {
                let declared = file.graph.name().trim();
                if declared.is_empty() {
                    "inline".to_owned()
                } else {
                    declared.to_owned()
                }
            });
            (name, file.graph, components, file.flow, file.defects)
        }
        (Some(_), Some(_)) => {
            return Err(schema(format!(
                "job {idx}: give \"bench\" or \"assay\", not both"
            )))
        }
        (None, None) => {
            return Err(schema(format!(
                "job {idx}: needs a \"bench\" or \"assay\" field"
            )))
        }
    };

    // Precedence: an entry-level "flow" beats the assay file's own `flow`
    // statement; the file's `t_c=`/`seed=` overlay the base config but lose
    // to the entry's "t_c_secs"/"seed" below.
    let mut config = match entry.get("flow") {
        None => match file_flow.kind {
            Some(FlowKind::Baseline) => SynthesisConfig::paper_baseline(),
            _ => SynthesisConfig::paper_dcsa(),
        },
        Some(v) => match v.as_str() {
            Some("dcsa") | Some("ours") => SynthesisConfig::paper_dcsa(),
            Some("ba") | Some("baseline") => SynthesisConfig::paper_baseline(),
            _ => {
                return Err(schema(format!(
                    "job {idx}: \"flow\" must be \"dcsa\"/\"ours\" or \"ba\"/\"baseline\""
                )))
            }
        },
    };
    if let Some(t_c) = file_flow.t_c {
        config.t_c = t_c;
    }
    if let Some(seed) = file_flow.seed {
        config = config.with_seed(seed);
    }
    if let Some(v) = entry.get("seed") {
        let seed = v
            .as_u64()
            .ok_or_else(|| schema(format!("job {idx}: \"seed\" must be an unsigned integer")))?;
        config = config.with_seed(seed);
    }
    if let Some(v) = entry.get("t_c_secs") {
        // Zero is rejected along with negatives: a zero transport constant
        // collapses every Eq. (5) window and is never what anyone meant.
        let secs = v
            .as_f64()
            .filter(|s| s.is_finite() && *s > 0.0)
            .ok_or_else(|| schema(format!("job {idx}: \"t_c_secs\" must be a positive number")))?;
        config.t_c = Duration::from_secs_f64(secs);
    }

    let name = match entry.get("name") {
        None => default_name,
        Some(v) => v
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| schema(format!("job {idx}: \"name\" must be a string")))?,
    };

    let mut job = BatchJob::new(name, graph, components, config);
    if let Some(v) = entry.get("defects") {
        // Re-encode the sub-value and decode it as a DefectMap; the shim's
        // Value is serde::Content, which round-trips losslessly. An entry's
        // "defects" replaces any `defect` statements in the assay file.
        let text =
            serde_json::to_string(v).map_err(|e| schema(format!("job {idx}: \"defects\": {e}")))?;
        let defects: DefectMap = serde_json::from_str(&text)
            .map_err(|e| schema(format!("job {idx}: \"defects\" is not a defect map: {e}")))?;
        job = job.with_defects(defects);
    } else if !file_defects.is_pristine() {
        job = job.with_defects(file_defects);
    }
    Ok(job)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_entries_with_overrides_and_repeat() {
        let text = r#"{
            "jobs": [
                { "bench": "PCR" },
                { "bench": "pcr", "seed": 7, "name": "PCR-alt" },
                { "bench": "IVD", "repeat": 2, "flow": "baseline", "t_c_secs": 3.0 }
            ]
        }"#;
        let jobs = parse_manifest(text, Path::new(".")).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].name, "PCR");
        assert_eq!(jobs[1].name, "PCR-alt");
        assert_eq!(jobs[2].name, "IVD#1");
        assert_eq!(jobs[3].name, "IVD#2");
        // Same bench, different seed: different schedule config is NOT part
        // of the seed, so the schedule keys still collide (seed only moves
        // placement), while the default-seed PCR pair shares everything.
        assert_eq!(jobs[0].schedule_key(), jobs[1].schedule_key());
        assert_eq!(jobs[2].schedule_key(), jobs[3].schedule_key());
        assert_ne!(jobs[0].schedule_key(), jobs[2].schedule_key());
        assert_eq!(jobs[2].config.t_c, Duration::from_secs(3));
        assert_eq!(
            jobs[2].config.binding,
            SynthesisConfig::paper_baseline().binding
        );
    }

    #[test]
    fn accepts_a_bare_array_document() {
        let jobs = parse_manifest(r#"[ { "bench": "PCR" } ]"#, Path::new(".")).unwrap();
        assert_eq!(jobs.len(), 1);
    }

    #[test]
    fn rejects_bad_entries_with_pointed_messages() {
        let err = |text: &str| {
            parse_manifest(text, Path::new("."))
                .unwrap_err()
                .to_string()
        };
        assert!(err("{}").contains("expected"));
        assert!(err(r#"{ "jobs": [] }"#).contains("no jobs"));
        assert!(err(r#"[ {} ]"#).contains("\"bench\" or \"assay\""));
        assert!(err(r#"[ { "bench": "PCR", "assay": "x" } ]"#).contains("not both"));
        assert!(err(r#"[ { "bench": "NoSuch" } ]"#).contains("unknown benchmark"));
        assert!(err(r#"[ { "bench": "PCR", "flow": "fancy" } ]"#).contains("\"flow\""));
        assert!(err(r#"[ { "bench": "PCR", "repeat": 0 } ]"#).contains("at least 1"));
        assert!(err("not json").contains("not valid JSON"));
    }

    #[test]
    fn rejects_unknown_fields_by_name() {
        let err = parse_manifest(r#"[ { "bench": "PCR", "sead": 7 } ]"#, Path::new("."))
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown field \"sead\""), "{err}");
        assert!(err.contains("seed"), "should list the legal fields: {err}");
    }

    #[test]
    fn rejects_non_object_entries_and_zero_t_c() {
        let err = |text: &str| {
            parse_manifest(text, Path::new("."))
                .unwrap_err()
                .to_string()
        };
        assert!(err(r#"[ 42 ]"#).contains("must be a JSON object"));
        assert!(err(r#"[ { "bench": "PCR", "t_c_secs": 0 } ]"#).contains("positive number"));
        assert!(err(r#"[ { "bench": "PCR", "t_c_secs": -1.0 } ]"#).contains("positive number"));
    }

    #[test]
    fn json_errors_carry_line_and_column() {
        let text = "{\n  \"jobs\": [\n    { \"bench\": \"PCR\" },,\n  ]\n}";
        let err = parse_manifest(text, Path::new(".")).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ManifestError::Json(_)), "{msg}");
        assert!(msg.contains("line 3"), "{msg}");
    }

    /// A self-contained inline assay used by the DSL-entry tests.
    const INLINE_ASSAY: &str = "assay-dsl 1\nassay \"drop-in\"\n\nop a mix 5s wash=2s\nop b detect 4s wash=1s\n\nedge a -> b\n\nflow baseline t_c=3s seed=9\ndefect block 2 3\n\nalloc 1 0 0 1\n";

    /// Encodes a string as a JSON string literal (the shim has no `json!`).
    fn json_str(s: &str) -> String {
        serde_json::to_string(&s.to_owned()).unwrap()
    }

    #[test]
    fn inline_assay_entries_parse_and_honor_file_statements() {
        let manifest = format!(r#"[ {{ "assay": {} }} ]"#, json_str(INLINE_ASSAY));
        let jobs = parse_manifest(&manifest, Path::new("/nonexistent")).unwrap();
        assert_eq!(jobs.len(), 1);
        // Name comes from the assay's own `assay` statement.
        assert_eq!(jobs[0].name, "drop-in");
        // `flow baseline t_c=3s seed=9` all land in the config.
        assert_eq!(
            jobs[0].config.binding,
            SynthesisConfig::paper_baseline().binding
        );
        assert_eq!(jobs[0].config.t_c, Duration::from_secs(3));
        assert_eq!(
            jobs[0].config.sa.seed,
            SynthesisConfig::paper_baseline().with_seed(9).sa.seed
        );
        // `defect block 2 3` lands in the job's defect map.
        assert!(jobs[0].defects.is_blocked(CellPos::new(2, 3)));
    }

    #[test]
    fn entry_fields_override_inline_assay_statements() {
        let pristine = serde_json::to_string(&DefectMap::pristine()).unwrap();
        let manifest = format!(
            r#"[ {{ "assay": {}, "name": "renamed", "flow": "ours", "t_c_secs": 7.0, "defects": {pristine} }} ]"#,
            json_str(INLINE_ASSAY)
        );
        let jobs = parse_manifest(&manifest, Path::new(".")).unwrap();
        assert_eq!(jobs[0].name, "renamed");
        assert_eq!(
            jobs[0].config.binding,
            SynthesisConfig::paper_dcsa().binding
        );
        assert_eq!(jobs[0].config.t_c, Duration::from_secs(7));
        // Entry "defects" replaces the file's `defect` statements entirely.
        assert!(jobs[0].defects.is_pristine());
        // The file's seed still applies: the entry did not override it.
        assert_eq!(
            jobs[0].config.sa.seed,
            SynthesisConfig::paper_dcsa().with_seed(9).sa.seed
        );
    }

    #[test]
    fn inline_and_path_assays_share_schedule_keys() {
        let dir = std::env::temp_dir().join("mfb_manifest_inline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drop_in.assay");
        std::fs::write(&path, INLINE_ASSAY).unwrap();

        let inline = format!(
            r#"[ {{ "assay": {}, "name": "same" }} ]"#,
            json_str(INLINE_ASSAY)
        );
        let by_path = r#"[ { "assay": "drop_in.assay", "name": "same" } ]"#;
        let a = parse_manifest(&inline, Path::new(".")).unwrap();
        let b = parse_manifest(by_path, &dir).unwrap();
        assert_eq!(a[0].schedule_key(), b[0].schedule_key());
        assert_eq!(a[0].defects, b[0].defects);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inline_assay_errors_cite_the_entry_not_a_path() {
        let manifest = format!(
            r#"[ {{ "assay": {} }} ]"#,
            json_str("assay-dsl 1\nop a mix 0s wash=1s\n")
        );
        let err = parse_manifest(&manifest, Path::new("."))
            .unwrap_err()
            .to_string();
        assert!(err.contains("job 0 inline assay"), "{err}");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn inline_defects_round_trip_into_the_job() {
        let mut defects = DefectMap::pristine();
        defects.block_cell(CellPos::new(2, 3));
        let defects_json = serde_json::to_string(&defects).unwrap();
        let text = format!(r#"[ {{ "bench": "PCR", "defects": {defects_json} }} ]"#);
        let jobs = parse_manifest(&text, Path::new(".")).unwrap();
        assert_eq!(jobs[0].defects, defects);
        assert!(!jobs[0].defects.is_pristine());
    }
}
