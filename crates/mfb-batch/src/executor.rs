//! The pipelined batch executor.
//!
//! [`run_batch`] drains a queue of [`BatchJob`]s through a pool of bounded
//! worker threads (capped by `MFB_THREADS`, like every parallel sweep in
//! this workspace) that share one [`StageCache`]. Each job is split into
//! two tasks:
//!
//! * **prep** — scheduling and netlist construction, pushed into the cache
//!   via [`Synthesizer::prepare_cached`];
//! * **solve** — the full cached flow, which picks the prepped stages up
//!   warm and spends its time on placement SA and routing.
//!
//! Workers prefer the lowest-index prepped job and otherwise pull the next
//! prep task, so the solve of job *i* overlaps the prep of job *i+1* — and
//! with more than one worker, the routing of job *i* overlaps the
//! annealing of job *i+1* outright. Because every stage is a pure
//! function addressed by content (see `mfb_core::cache`), the scheduling
//! order affects only wall-clock time: results are folded in input order
//! and are **byte-identical** to serial uncached synthesis for any
//! `MFB_THREADS`, which the golden and property tests pin.
//!
//! Worker panics are contained per job and replayed for the lowest job
//! index after the batch drains, mirroring `mfb_model::par`'s semantics.

use mfb_core::prelude::*;
use mfb_model::hash::ContentHash;
use mfb_model::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// One synthesis request in a batch.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name (unique names make reports easier to read, but nothing
    /// requires it).
    pub name: String,
    /// The bioassay.
    pub graph: SequencingGraph,
    /// The allocated components.
    pub components: ComponentSet,
    /// Full flow configuration (strategies, seeds, `t_c`, …).
    pub config: SynthesisConfig,
    /// Chip damage honored by every stage; pristine by default.
    pub defects: DefectMap,
    /// Wash-time model; the paper-calibrated log-linear model by default.
    pub wash: Arc<dyn WashModel>,
    /// Execution budget (deadline and/or cancellation); unlimited by
    /// default. A tripped budget surfaces as
    /// [`SynthesisError::DeadlineExceeded`] or
    /// [`SynthesisError::Cancelled`] in the job's outcome — it never
    /// perturbs the results of jobs that finish in time.
    pub budget: Budget,
}

impl BatchJob {
    /// A job on a pristine chip with the paper-calibrated wash model.
    pub fn new(
        name: impl Into<String>,
        graph: SequencingGraph,
        components: ComponentSet,
        config: SynthesisConfig,
    ) -> Self {
        BatchJob {
            name: name.into(),
            graph,
            components,
            config,
            defects: DefectMap::pristine(),
            wash: Arc::new(LogLinearWash::paper_calibrated()),
            budget: Budget::unlimited(),
        }
    }

    /// Replaces the execution budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the defect map.
    #[must_use]
    pub fn with_defects(mut self, defects: DefectMap) -> Self {
        self.defects = defects;
        self
    }

    /// Replaces the wash model.
    #[must_use]
    pub fn with_wash(mut self, wash: Arc<dyn WashModel>) -> Self {
        self.wash = wash;
        self
    }

    /// The synthesizer this job runs under.
    pub fn synthesizer(&self) -> Synthesizer {
        Synthesizer::new(self.config.clone())
    }

    /// The schedule-stage cache key of this job (see
    /// [`Synthesizer::schedule_cache_key`]).
    pub fn schedule_key(&self) -> ContentHash {
        self.synthesizer().schedule_cache_key(
            &self.graph,
            &self.components,
            &*self.wash,
            &self.defects,
        )
    }
}

/// The per-job row of a [`BatchReport`]. Every field except the two
/// `*_ms` timings is deterministic.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct JobOutcome {
    /// The job's display name.
    pub name: String,
    /// Whether synthesis succeeded.
    pub ok: bool,
    /// Display form of the error on failure.
    pub error: Option<String>,
    /// Placement attempts consumed (0 on failure before placement).
    pub attempts: u32,
    /// Realized assay execution time, seconds (0 on failure).
    pub execution_secs: f64,
    /// Total flow-channel length, millimetres (0 on failure).
    pub channel_length_mm: f64,
    /// Transport tasks routed (0 on failure).
    pub transports: usize,
    /// Hex form of the job's schedule cache key.
    pub schedule_key: String,
    /// True when this job's schedule stage was warm before its solve ran:
    /// already cached when the batch started, or produced by an
    /// earlier-indexed job. Computed from keys alone, so it is
    /// deterministic under any thread count.
    pub warm_schedule: bool,
    /// Wall time of the prep task (schedule + netlist), milliseconds.
    pub prep_ms: f64,
    /// Wall time of the solve task (full cached flow), milliseconds.
    pub solve_ms: f64,
}

/// Summary of one [`run_batch`] call.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct BatchReport {
    /// Worker threads used (`min(MFB_THREADS, jobs)`).
    pub threads: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Jobs that synthesized successfully.
    pub ok: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Wall-clock time of the whole batch, seconds.
    pub wall_seconds: f64,
    /// Jobs per wall-clock second — the headline throughput axis.
    pub assays_per_sec: f64,
    /// Cache hit/miss counters accumulated **by this batch** (the shared
    /// cache's counters are snapshotted before and after).
    pub cache: CacheStats,
    /// Per-job rows, in input order.
    pub outcomes: Vec<JobOutcome>,
}

/// Everything [`run_batch`] produces: the report plus the raw per-job
/// results in input order.
#[derive(Debug)]
pub struct BatchRun {
    /// The summary report.
    pub report: BatchReport,
    /// Per-job results, index-aligned with the input jobs.
    pub solutions: Vec<Result<Solution, SynthesisError>>,
}

/// Per-job scratch the workers fill in.
#[derive(Default)]
struct Record {
    result: Option<std::thread::Result<Result<Solution, SynthesisError>>>,
    prep_ms: f64,
    solve_ms: f64,
}

/// Scheduler state of the two-stage pipeline.
struct Pipeline {
    /// Next job whose prep task has not been claimed.
    next_prep: usize,
    /// Prepped jobs awaiting a solve, popped lowest index first.
    ready: BinaryHeap<Reverse<usize>>,
    /// Jobs whose solve task has finished.
    solved: usize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs every job through the shared cache and folds the results in input
/// order. See the [module docs](self) for the pipeline structure and the
/// determinism contract.
pub fn run_batch(jobs: &[BatchJob], cache: &StageCache) -> BatchRun {
    let n = jobs.len();
    let stats_before = cache.stats();
    let started = std::time::Instant::now();

    // Warm attribution is decided before any worker runs, from cache keys
    // alone: job i is warm iff its schedule key is already in the cache or
    // collides with an earlier-indexed job's key.
    let keys: Vec<ContentHash> = jobs.iter().map(BatchJob::schedule_key).collect();
    let preexisting: Vec<bool> = keys.iter().map(|k| cache.contains_schedule(*k)).collect();
    let warm: Vec<bool> = (0..n)
        .map(|i| preexisting[i] || keys[..i].contains(&keys[i]))
        .collect();

    let workers = mfb_model::par::thread_limit().max(1).min(n.max(1));
    let records: Vec<Mutex<Record>> = (0..n).map(|_| Mutex::new(Record::default())).collect();
    let state = Mutex::new(Pipeline {
        next_prep: 0,
        ready: BinaryHeap::new(),
        solved: 0,
    });
    let idle = Condvar::new();

    enum Task {
        Prep(usize),
        Solve(usize),
    }

    // Pipeline workers inherit the caller's trace subscriber, so one
    // trace shows per-job prep/solve occupancy across every worker lane.
    let obs = mfb_obs::current();
    if n > 0 {
        std::thread::scope(|scope| {
            let state = &state;
            let records = &records;
            let idle = &idle;
            for _ in 0..workers {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _obs_guard = obs.as_ref().map(mfb_obs::install);
                    loop {
                        let task = {
                            let mut st = lock(state);
                            loop {
                                if let Some(Reverse(i)) = st.ready.pop() {
                                    break Task::Solve(i);
                                }
                                if st.next_prep < n {
                                    let i = st.next_prep;
                                    st.next_prep += 1;
                                    break Task::Prep(i);
                                }
                                if st.solved == n {
                                    return;
                                }
                                st = idle.wait(st).unwrap_or_else(PoisonError::into_inner);
                            }
                        };
                        match task {
                            Task::Prep(i) => {
                                let job = &jobs[i];
                                let _span = mfb_obs::obs_span!(
                                    "batch.prep",
                                    job = i,
                                    name = job.name.clone()
                                );
                                let t0 = std::time::Instant::now();
                                // Errors and panics are deliberately dropped
                                // here: the solve task replays them through the
                                // same cache (or recomputes, if a panic left no
                                // entry) and reports them deterministically. A
                                // job whose budget has already tripped skips
                                // prep outright — its solve fails at the first
                                // checkpoint anyway.
                                if job.budget.check().is_ok() {
                                    let _ = catch_unwind(AssertUnwindSafe(|| {
                                        let _ = job.synthesizer().prepare_cached(
                                            &job.graph,
                                            &job.components,
                                            &*job.wash,
                                            &job.defects,
                                            cache,
                                        );
                                    }));
                                }
                                lock(&records[i]).prep_ms = t0.elapsed().as_secs_f64() * 1e3;
                                let mut st = lock(state);
                                st.ready.push(Reverse(i));
                                drop(st);
                                idle.notify_all();
                            }
                            Task::Solve(i) => {
                                let job = &jobs[i];
                                let _span = mfb_obs::obs_span!(
                                    "batch.solve",
                                    job = i,
                                    name = job.name.clone()
                                );
                                let t0 = std::time::Instant::now();
                                let result = catch_unwind(AssertUnwindSafe(|| {
                                    job.synthesizer().synthesize_with(
                                        &job.graph,
                                        &job.components,
                                        &*job.wash,
                                        &job.defects,
                                        Some(cache),
                                        &job.budget,
                                    )
                                }));
                                {
                                    let mut r = lock(&records[i]);
                                    r.solve_ms = t0.elapsed().as_secs_f64() * 1e3;
                                    r.result = Some(result);
                                }
                                let mut st = lock(state);
                                st.solved += 1;
                                let done = st.solved == n;
                                drop(st);
                                if done {
                                    idle.notify_all();
                                }
                            }
                        }
                    }
                });
            }
        });
    }

    // Fold in input order; the lowest-index panic (if any) replays exactly
    // as it would have in a serial loop.
    let mut solutions = Vec::with_capacity(n);
    let mut timings = Vec::with_capacity(n);
    for rec in records {
        let rec = rec.into_inner().unwrap_or_else(PoisonError::into_inner);
        timings.push((rec.prep_ms, rec.solve_ms));
        match rec.result.expect("every job's solve task ran") {
            Ok(r) => solutions.push(r),
            Err(payload) => resume_unwind(payload),
        }
    }

    let wall_seconds = started.elapsed().as_secs_f64();
    let outcomes: Vec<JobOutcome> = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let (prep_ms, solve_ms) = timings[i];
            match &solutions[i] {
                Ok(s) => {
                    let m = SolutionMetrics::of(s, &job.components);
                    JobOutcome {
                        name: job.name.clone(),
                        ok: true,
                        error: None,
                        attempts: s.attempts,
                        execution_secs: m.execution_time.as_secs_f64(),
                        channel_length_mm: m.channel_length_mm,
                        transports: m.transports,
                        schedule_key: keys[i].to_hex(),
                        warm_schedule: warm[i],
                        prep_ms,
                        solve_ms,
                    }
                }
                Err(e) => JobOutcome {
                    name: job.name.clone(),
                    ok: false,
                    error: Some(e.to_string()),
                    attempts: 0,
                    execution_secs: 0.0,
                    channel_length_mm: 0.0,
                    transports: 0,
                    schedule_key: keys[i].to_hex(),
                    warm_schedule: warm[i],
                    prep_ms,
                    solve_ms,
                },
            }
        })
        .collect();

    let ok = outcomes.iter().filter(|o| o.ok).count();
    let report = BatchReport {
        threads: workers,
        jobs: n,
        ok,
        failed: n - ok,
        wall_seconds,
        assays_per_sec: n as f64 / wall_seconds.max(1e-9),
        cache: cache.stats() - stats_before,
        outcomes,
    };
    BatchRun { report, solutions }
}
