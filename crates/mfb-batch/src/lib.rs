//! Pipelined batch synthesis for DCSA flow-based biochips.
//!
//! Labs rarely synthesize one assay: a screening campaign re-runs the same
//! bioassays across seeds, transport constants and defect maps, and most of
//! that work repeats stages bit-for-bit. This crate turns the
//! content-addressed stage cache of `mfb_core` into a **throughput engine**:
//!
//! * [`executor::BatchJob`] — one synthesis request (assay + components +
//!   config + wash model + defect map);
//! * [`executor::run_batch`] — a bounded worker pool (capped by
//!   `MFB_THREADS`) that pipelines jobs in two stages so the routing of one
//!   job overlaps the annealing of the next, all through one shared
//!   [`mfb_core::prelude::StageCache`];
//! * [`manifest`] — the JSON job-manifest format behind `mfb batch`.
//!
//! The headline number is **assays per second**, reported per batch with
//! per-stage cache hit/miss counters. The non-negotiable invariant is
//! determinism: for any `MFB_THREADS`, a batch's solutions are
//! byte-identical to running each job through serial, uncached
//! [`mfb_core::prelude::Synthesizer::synthesize`] — pinned by the golden
//! and property tests in `tests/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod executor;
pub mod manifest;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::executor::{run_batch, BatchJob, BatchReport, BatchRun, JobOutcome};
    pub use crate::manifest::{parse_manifest, ManifestError};
}
