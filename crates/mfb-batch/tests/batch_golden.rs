//! Batch-executor golden suite: cached, pipelined, multi-threaded batches
//! must produce solutions **byte-identical** to serial uncached synthesis.
//!
//! Everything lives in a single `#[test]` because the worker-pool width is
//! read from the process-global `MFB_THREADS` variable: parallel test
//! functions mutating it would race.

use mfb_batch::prelude::*;
use mfb_bench_suite::benchmark_by_name;
use mfb_core::prelude::*;
use mfb_model::prelude::*;

fn bench_job(bench: &str, name: &str, seed: Option<u64>) -> BatchJob {
    let b = benchmark_by_name(bench).expect("Table-I benchmark must exist");
    let comps = b.components(&ComponentLibrary::default());
    let mut cfg = SynthesisConfig::paper_dcsa();
    if let Some(seed) = seed {
        cfg = cfg.with_seed(seed);
    }
    BatchJob::new(name, b.graph, comps, cfg)
}

/// Serial, uncached reference: each job synthesized independently with the
/// plain (pre-cache) entry point.
fn reference_json(jobs: &[BatchJob]) -> Vec<String> {
    jobs.iter()
        .map(|job| {
            let solution = job
                .synthesizer()
                .synthesize_with_defects(&job.graph, &job.components, &*job.wash, &job.defects)
                .expect("reference jobs must synthesize");
            serde_json::to_string(&solution).expect("Solution serializes")
        })
        .collect()
}

fn batch_json(run: &BatchRun) -> Vec<String> {
    run.solutions
        .iter()
        .map(|r| {
            let s = r.as_ref().expect("batch jobs must synthesize");
            serde_json::to_string(s).expect("Solution serializes")
        })
        .collect()
}

#[test]
fn batches_match_serial_uncached_synthesis_byte_for_byte() {
    // Duplicates and a seed variant exercise intra-batch cache sharing:
    // PCR#2 repeats PCR#1 exactly; PCR-alt shares its schedule (the seed
    // only moves placement); IVD shares nothing.
    let jobs = vec![
        bench_job("PCR", "PCR#1", None),
        bench_job("PCR", "PCR#2", None),
        bench_job("PCR", "PCR-alt", Some(7)),
        bench_job("IVD", "IVD", None),
    ];

    std::env::set_var("MFB_THREADS", "1");
    let want = reference_json(&jobs);

    // Cold batch, serial worker.
    let cache = StageCache::new();
    let cold = run_batch(&jobs, &cache);
    assert_eq!(batch_json(&cold), want, "cold serial batch diverged");
    assert_eq!(cold.report.jobs, 4);
    assert_eq!(cold.report.ok, 4);
    assert_eq!(cold.report.failed, 0);
    assert_eq!(cold.report.threads, 1);
    assert!(cold.report.assays_per_sec > 0.0);
    // PCR#2 reuses PCR#1's stages wholesale, and PCR-alt reuses its
    // schedule; three distinct schedules total.
    assert_eq!(cold.report.cache.schedule_misses, 2);
    assert!(cold.report.cache.schedule_hits >= 2);
    assert!(
        cold.report.cache.hits() > 0,
        "duplicates must hit the cache"
    );
    let warm_flags: Vec<bool> = cold
        .report
        .outcomes
        .iter()
        .map(|o| o.warm_schedule)
        .collect();
    assert_eq!(warm_flags, [false, true, true, false]);

    // Warm batch over the now-populated cache, wide worker pool: every
    // stage is a hit and the bytes still match.
    std::env::set_var("MFB_THREADS", "8");
    let warm = run_batch(&jobs, &cache);
    assert_eq!(batch_json(&warm), want, "warm parallel batch diverged");
    assert_eq!(
        warm.report.cache.misses(),
        0,
        "warm batch must not recompute"
    );
    assert!(warm.report.outcomes.iter().all(|o| o.warm_schedule));
    assert_eq!(
        warm.report.cache.schedule_validations, 0,
        "schedules were already validated by the cold batch"
    );

    // Cold batch again, wide pool, fresh cache: still byte-identical.
    let cache2 = StageCache::new();
    let cold_par = run_batch(&jobs, &cache2);
    assert_eq!(batch_json(&cold_par), want, "cold parallel batch diverged");
    assert_eq!(cold_par.report.cache.schedule_misses, 2);

    // Reports are deterministic apart from wall-clock fields.
    let mut a = cold.report.clone();
    let mut b = cold_par.report.clone();
    a.threads = 0;
    b.threads = 0;
    a.wall_seconds = 0.0;
    b.wall_seconds = 0.0;
    a.assays_per_sec = 0.0;
    b.assays_per_sec = 0.0;
    for o in a.outcomes.iter_mut().chain(b.outcomes.iter_mut()) {
        o.prep_ms = 0.0;
        o.solve_ms = 0.0;
    }
    assert_eq!(
        a, b,
        "deterministic report fields must not depend on MFB_THREADS"
    );

    // An empty batch is a no-op, not a hang.
    let empty = run_batch(&[], &cache);
    assert_eq!(empty.report.jobs, 0);
    assert!(empty.solutions.is_empty());

    std::env::remove_var("MFB_THREADS");
}
