//! Property suite for the batch executor: on **random** assay DAGs, a
//! warm-cache batch run under any worker-pool width must be byte-identical
//! to serial, uncached synthesis of every job.
//!
//! The whole suite is a single proptest `#[test]` because the pool width
//! comes from the process-global `MFB_THREADS` variable; concurrent test
//! functions mutating it would race. (Other test *binaries* are separate
//! processes, so they are unaffected.)

use mfb_batch::prelude::*;
use mfb_bench_suite::synth::SyntheticSpec;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use proptest::prelude::*;

fn job(n: usize, dag_seed: u64, sa_seed: u64, name: &str) -> BatchJob {
    let graph = SyntheticSpec::new(n, dag_seed).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    BatchJob::new(
        name,
        graph,
        comps,
        SynthesisConfig::paper_dcsa().with_seed(sa_seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn warm_batches_equal_serial_uncached_synthesis(
        n in 2usize..14,
        dag_seed in any::<u64>(),
        sa_seed in any::<u64>(),
    ) {
        // Three jobs: a base assay, its exact duplicate (full cache
        // overlap), and an independent assay (no overlap).
        let jobs = vec![
            job(n, dag_seed, sa_seed, "base"),
            job(n, dag_seed, sa_seed, "dup"),
            job(n.max(3) - 1, dag_seed ^ 0x9e37_79b9, sa_seed, "other"),
        ];

        std::env::set_var("MFB_THREADS", "1");
        let want: Vec<String> = jobs
            .iter()
            .map(|j| {
                let r = j
                    .synthesizer()
                    .synthesize_with_defects(&j.graph, &j.components, &*j.wash, &j.defects);
                format!("{r:?}")
            })
            .collect();

        let cache = StageCache::new();
        for threads in ["1", "8"] {
            std::env::set_var("MFB_THREADS", threads);
            // First pass per width is cold-or-warm depending on the
            // previous iteration; the second is fully warm. All must match.
            for pass in 0..2 {
                let run = run_batch(&jobs, &cache);
                let got: Vec<String> =
                    run.solutions.iter().map(|r| format!("{r:?}")).collect();
                prop_assert_eq!(
                    &got,
                    &want,
                    "MFB_THREADS={} pass {}: batch diverged from serial uncached",
                    threads,
                    pass
                );
                prop_assert_eq!(run.report.jobs, 3);
                // The duplicate job guarantees schedule reuse even cold.
                prop_assert!(run.report.cache.hits() > 0);
            }
        }
        // Fully warm by now: nothing recomputes.
        let warm = run_batch(&jobs, &cache);
        prop_assert_eq!(warm.report.cache.misses(), 0);

        std::env::remove_var("MFB_THREADS");
    }
}
