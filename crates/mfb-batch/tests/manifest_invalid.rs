//! Fixture-driven rejection tests for the manifest parser.
//!
//! Every file under `tests/fixtures/` is a manifest a user could
//! plausibly write by accident. The contract under test: each one is
//! rejected with the *right* [`ManifestError`] variant and a message that
//! points at the offending entry — never a panic, never a silently
//! misconfigured job.

use mfb_batch::prelude::*;
use std::path::Path;

fn load(name: &str) -> Result<Vec<BatchJob>, ManifestError> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text =
        std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    parse_manifest(&text, &dir)
}

#[test]
fn bad_syntax_is_a_json_error_with_a_position() {
    let err = load("bad_syntax.json").unwrap_err();
    assert!(matches!(err, ManifestError::Json(_)), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("line 3"), "position missing: {msg}");
}

#[test]
fn unknown_field_names_the_field_and_the_entry() {
    let err = load("unknown_field.json").unwrap_err();
    assert!(matches!(err, ManifestError::Schema(_)), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("job 0") && msg.contains("\"sead\""), "{msg}");
}

#[test]
fn zero_t_c_is_out_of_range() {
    let err = load("zero_t_c.json").unwrap_err();
    assert!(matches!(err, ManifestError::Schema(_)), "{err}");
    assert!(err.to_string().contains("t_c_secs"), "{err}");
}

#[test]
fn zero_repeat_is_out_of_range() {
    let err = load("zero_repeat.json").unwrap_err();
    assert!(matches!(err, ManifestError::Schema(_)), "{err}");
    assert!(err.to_string().contains("at least 1"), "{err}");
}

#[test]
fn missing_assay_file_is_an_assay_error_with_the_path() {
    let err = load("missing_assay.json").unwrap_err();
    assert!(matches!(err, ManifestError::Assay(_)), "{err}");
    assert!(err.to_string().contains("no_such_file.txt"), "{err}");
}

#[test]
fn non_object_entry_is_rejected() {
    let err = load("non_object_entry.json").unwrap_err();
    assert!(matches!(err, ManifestError::Schema(_)), "{err}");
    assert!(err.to_string().contains("JSON object"), "{err}");
}
