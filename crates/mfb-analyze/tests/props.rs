//! Property-based robustness for the analyzer: random assays, randomly
//! mutilated solutions, hostile time windows — the analyzer must never
//! panic, and its report must be a pure function of the input regardless
//! of the worker-thread count.

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_verify::prelude::{render_json, render_pretty};
use proptest::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn solved(n: usize, seed: u64) -> (SequencingGraph, ComponentSet, Solution) {
    let g = SyntheticSpec::new(n, seed).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    let sol = Synthesizer::paper_dcsa()
        .synthesize(&g, &comps, &wash())
        .expect("synthesizes");
    (g, comps, sol)
}

/// Applies one of a family of structured corruptions, chosen by `knob`.
fn corrupt(sol: &mut Solution, knob: u8, victim: proptest::sample::Index) {
    if sol.routing.paths.is_empty() {
        return;
    }
    let pi = victim.index(sol.routing.paths.len());
    let grid = sol.placement.grid();
    match knob % 4 {
        // Teleport a cell to the far corner (off-route but on-grid).
        0 => {
            if !sol.routing.paths[pi].cells.is_empty() {
                let ci = victim.index(sol.routing.paths[pi].cells.len());
                sol.routing.paths[pi].cells[ci] = CellPos::new(grid.width - 1, grid.height - 1);
            }
        }
        // Duplicate another path's head occupancy (seeded conflict).
        1 => {
            let donor = sol
                .routing
                .paths
                .iter()
                .find(|p| !p.is_empty())
                .map(|p| (p.cells[0], p.windows[0]));
            if let Some((cell, window)) = donor {
                sol.routing.paths[pi].cells.push(cell);
                sol.routing.paths[pi].windows.push(window);
            }
        }
        // Push a window out to the tick ceiling: clean_at must saturate,
        // not overflow.
        2 => {
            if !sol.routing.paths[pi].windows.is_empty() {
                let wi = victim.index(sol.routing.paths[pi].windows.len());
                let start = Instant::from_ticks(u64::MAX - 1);
                sol.routing.paths[pi].windows[wi] =
                    Interval::new(start, Instant::from_ticks(u64::MAX));
            }
        }
        // Teleport a cell off-grid entirely: the IR must skip it, exactly
        // as the replay timeline does.
        _ => {
            if !sol.routing.paths[pi].cells.is_empty() {
                let ci = victim.index(sol.routing.paths[pi].cells.len());
                sol.routing.paths[pi].cells[ci] = CellPos::new(grid.width + 40, grid.height + 40);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The analyzer never panics on corrupted solutions, and its rendered
    /// report is byte-identical whether the three analyses fan out over
    /// one thread or eight.
    #[test]
    fn analyzer_is_total_and_thread_invariant(
        n in 2usize..16,
        seed in any::<u64>(),
        knob in any::<u8>(),
        victim in any::<proptest::sample::Index>(),
    ) {
        let (g, comps, mut sol) = solved(n, seed);
        corrupt(&mut sol, knob, victim);

        std::env::set_var("MFB_THREADS", "1");
        let serial = sol.analyze(&g, &comps, &wash());
        std::env::set_var("MFB_THREADS", "8");
        let parallel = sol.analyze(&g, &comps, &wash());
        std::env::remove_var("MFB_THREADS");

        prop_assert_eq!(render_pretty(&serial), render_pretty(&parallel));
        prop_assert_eq!(render_json(&serial), render_json(&parallel));
    }

    /// Clean random solutions carry no `Error`-severity analysis findings
    /// (the no-false-positives half of the soundness contract, on assays
    /// far outside Table I).
    #[test]
    fn clean_random_solutions_are_error_free(
        n in 2usize..16,
        seed in any::<u64>(),
    ) {
        let (g, comps, sol) = solved(n, seed);
        let report = sol.analyze(&g, &comps, &wash());
        let errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == mfb_verify::prelude::Severity::Error)
            .collect();
        prop_assert!(errors.is_empty(), "{errors:?}");
    }

    /// Findings come out in the shared canonical order: severity first,
    /// then rule id, with no exact duplicates.
    #[test]
    fn reports_are_sorted_and_deduplicated(
        n in 2usize..16,
        seed in any::<u64>(),
        knob in any::<u8>(),
        victim in any::<proptest::sample::Index>(),
    ) {
        let (g, comps, mut sol) = solved(n, seed);
        corrupt(&mut sol, knob, victim);
        let report = sol.analyze(&g, &comps, &wash());
        for pair in report.diagnostics.windows(2) {
            let key = |d: &mfb_verify::prelude::Diagnostic| {
                (std::cmp::Reverse(d.severity), d.rule.clone(), d.message.clone())
            };
            prop_assert!(key(&pair[0]) <= key(&pair[1]), "out of order: {pair:?}");
            prop_assert!(pair[0] != pair[1], "duplicate diagnostic: {:?}", pair[0]);
        }
    }
}
