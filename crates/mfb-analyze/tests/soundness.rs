//! Soundness pins for the static analyzer against the dynamic replay
//! oracle.
//!
//! Two guarantees are exercised end-to-end on the paper's Table-I
//! workloads:
//!
//! 1. **No false positives on clean solutions** — every freshly
//!    synthesized Table-I solution replays cleanly, and the analyzer
//!    agrees (no `Error`-severity findings).
//! 2. **Superset of replay's contamination classes** — for corrupted
//!    solutions, every cell the replay engine flags as a `CellConflict`
//!    or `WashGap` also appears among the analyzer's `ANA-TAINT-001`
//!    locations (zero false negatives on the shared conflict classes).
//!
//! Plus the determinism contract: rendered reports are byte-identical
//! across `MFB_THREADS` settings, and SARIF output stays valid JSON.

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_bench_suite::table1_benchmarks;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_sim::prelude::{replay, SimViolation};
use mfb_verify::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

/// Duplicates the head occupancy of one path onto a different-fluid path,
/// the same seeded defect `mfb analyze --inject conflict` uses. Returns
/// `false` when the solution has no suitable victim.
fn inject_conflict(sol: &mut Solution) -> bool {
    let donor = match sol.routing.paths.iter().find(|p| !p.is_empty()) {
        Some(p) => (p.cells[0], p.windows[0], p.fluid),
        None => return false,
    };
    let Some(victim) = sol
        .routing
        .paths
        .iter_mut()
        .find(|p| p.fluid != donor.2 && !p.is_empty())
    else {
        return false;
    };
    victim.cells.push(donor.0);
    victim.windows.push(donor.1);
    true
}

#[test]
fn table1_clean_solutions_are_analysis_clean() {
    for b in table1_benchmarks() {
        let comps = b.components(&ComponentLibrary::default());
        let sol = Synthesizer::paper_dcsa()
            .synthesize(&b.graph, &comps, &wash())
            .expect("Table-I benchmark synthesizes");
        let sim = replay(
            &b.graph,
            &comps,
            &sol.schedule,
            &sol.placement,
            &sol.routing,
            &wash(),
        );
        assert!(
            sim.is_valid(),
            "{}: replay found {:?}",
            b.name,
            sim.violations
        );
        let report = sol.analyze(&b.graph, &comps, &wash());
        let errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", b.name);
    }
}

#[test]
fn analyzer_findings_superset_replay_conflicts() {
    // Every CellConflict / WashGap cell the replay oracle reports for a
    // corrupted solution must appear among ANA-TAINT-001 locations: the
    // all-ordered-pairs taint check subsumes replay's overlapping-pair and
    // consecutive-wash-gap classes.
    let mut corrupted = 0;
    for b in table1_benchmarks() {
        let comps = b.components(&ComponentLibrary::default());
        let mut sol = Synthesizer::paper_dcsa()
            .synthesize(&b.graph, &comps, &wash())
            .expect("Table-I benchmark synthesizes");
        if !inject_conflict(&mut sol) {
            continue;
        }
        corrupted += 1;
        let sim = replay(
            &b.graph,
            &comps,
            &sol.schedule,
            &sol.placement,
            &sol.routing,
            &wash(),
        );
        let report = sol.analyze(&b.graph, &comps, &wash());
        let taint_cells: Vec<CellPos> = report
            .by_rule("ANA-TAINT-001")
            .filter_map(|d| match d.location {
                Location::Cell(c) => Some(c),
                _ => None,
            })
            .collect();
        for v in &sim.violations {
            let cell = match v {
                SimViolation::CellConflict { cell, .. } => *cell,
                SimViolation::WashGap { cell, .. } => *cell,
                _ => continue,
            };
            assert!(
                taint_cells.contains(&cell),
                "{}: replay flagged {v:?} but ANA-TAINT-001 only covers {taint_cells:?}",
                b.name
            );
        }
    }
    assert!(corrupted > 0, "no benchmark accepted the seeded defect");
}

#[test]
fn injected_conflict_is_always_caught() {
    // The seeded defect itself must never slip through: the duplicated
    // head occupancy puts two fluids in one cell at the same time.
    for seed in [1, 2, 3] {
        let g = SyntheticSpec::new(14, seed).generate();
        let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
        let mut sol = Synthesizer::paper_dcsa()
            .synthesize(&g, &comps, &wash())
            .expect("synthesizes");
        assert!(inject_conflict(&mut sol), "seed {seed}: no victim path");
        let report = sol.analyze(&g, &comps, &wash());
        assert!(
            report.by_rule("ANA-TAINT-001").count() > 0,
            "seed {seed}: {:?}",
            report.diagnostics
        );
        assert_eq!(report.exit_code(), 2, "errors must exit 2");
    }
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let b = table1_benchmarks().swap_remove(0); // PCR
    let comps = b.components(&ComponentLibrary::default());
    let mut sol = Synthesizer::paper_dcsa()
        .synthesize(&b.graph, &comps, &wash())
        .expect("synthesizes");
    assert!(inject_conflict(&mut sol), "PCR accepts the seeded defect");
    let render = |threads: &str| {
        std::env::set_var("MFB_THREADS", threads);
        let report = sol.analyze(&b.graph, &comps, &wash());
        std::env::remove_var("MFB_THREADS");
        (render_pretty(&report), render_json(&report))
    };
    let (pretty1, json1) = render("1");
    let (pretty8, json8) = render("8");
    assert_eq!(pretty1, pretty8, "pretty output diverged across threads");
    assert_eq!(json1, json8, "json output diverged across threads");
}

#[test]
fn sarif_output_is_valid_json_with_rule_metadata() {
    let b = table1_benchmarks().swap_remove(0); // PCR
    let comps = b.components(&ComponentLibrary::default());
    let mut sol = Synthesizer::paper_dcsa()
        .synthesize(&b.graph, &comps, &wash())
        .expect("synthesizes");
    assert!(inject_conflict(&mut sol), "PCR accepts the seeded defect");
    let report = sol.analyze(&b.graph, &comps, &wash());
    let sarif = render_sarif_with(&report, &analysis_rules());
    let doc: serde_json::Value = serde_json::from_str(&sarif).expect("SARIF is valid JSON");
    let rules = doc["runs"][0]["tool"]["driver"]["rules"]
        .as_array()
        .expect("rule metadata present");
    assert!(
        rules
            .iter()
            .any(|r| r["id"].as_str() == Some("ANA-TAINT-001")),
        "ANA rule catalog missing from SARIF"
    );
    let results = doc["runs"][0]["results"].as_array().expect("results");
    assert!(
        !results.is_empty(),
        "findings must surface as SARIF results"
    );
}

#[test]
fn rule_selection_filters_findings() {
    let b = table1_benchmarks().swap_remove(0); // PCR
    let comps = b.components(&ComponentLibrary::default());
    let mut sol = Synthesizer::paper_dcsa()
        .synthesize(&b.graph, &comps, &wash())
        .expect("synthesizes");
    assert!(inject_conflict(&mut sol), "PCR accepts the seeded defect");

    let mut only_taint = Analyzer::with_all_rules();
    only_taint.retain_only(["ANA-TAINT-001"]);
    let report = sol.analyze_with(
        &b.graph,
        &comps,
        &wash(),
        mfb_route::prelude::RouterConfig::paper(),
        &only_taint,
    );
    assert!(report.by_rule("ANA-TAINT-001").count() > 0);
    assert!(
        report.diagnostics.iter().all(|d| d.rule == "ANA-TAINT-001"),
        "retain_only leaked other rules: {:?}",
        report.diagnostics
    );

    let mut skipped = Analyzer::with_all_rules();
    skipped.disable("ANA-TAINT-001");
    let report = sol.analyze_with(
        &b.graph,
        &comps,
        &wash(),
        mfb_route::prelude::RouterConfig::paper(),
        &skipped,
    );
    assert_eq!(report.by_rule("ANA-TAINT-001").count(), 0);
}
