//! A deterministic worklist fixpoint engine for set lattices.
//!
//! The analyses in this crate are classic monotone dataflow problems: each
//! program point (here, a transport task or an operation) carries a fact
//! from a join-semilattice, facts flow along edges, and the solution is
//! the least fixpoint of the transfer equations. For provenance-style
//! analyses the lattice is the powerset of some id set with union as join,
//! which is what [`fixpoint_sets`] solves.
//!
//! Determinism is load-bearing: `mfb analyze` promises byte-identical
//! reports regardless of `MFB_THREADS`, so the worklist is an ordered set
//! popped smallest-first rather than a LIFO/FIFO whose drain order could
//! depend on discovery order. Monotonicity (facts only grow, the node set
//! is finite) guarantees termination regardless of drain order; the fixed
//! order just makes intermediate states — and thus any diagnostics derived
//! from traversal — reproducible.

use std::collections::BTreeSet;

/// Least fixpoint of `state[v] ⊇ state[u]` for every edge `u → v` in
/// `successors`, starting from `seeds`.
///
/// `successors[u]` lists the nodes `u` flows into; out-of-range targets
/// and self-loops are ignored (a self-loop is a no-op under union).
/// Returns the per-node solution, `seeds` grown to closure.
pub fn fixpoint_sets<T: Ord + Clone>(
    seeds: Vec<BTreeSet<T>>,
    successors: &[Vec<usize>],
) -> Vec<BTreeSet<T>> {
    let mut state = seeds;
    let mut work: BTreeSet<usize> = (0..state.len()).collect();
    while let Some(&u) = work.iter().next() {
        work.remove(&u);
        if state[u].is_empty() {
            continue;
        }
        // Clone the source fact so the union below can borrow the
        // destination mutably; provenance sets are small (≤ |ops|).
        let src = state[u].clone();
        for &v in successors.get(u).into_iter().flatten() {
            if v == u || v >= state.len() {
                continue;
            }
            let before = state[v].len();
            state[v].extend(src.iter().cloned());
            if state[v].len() != before {
                work.insert(v);
            }
        }
    }
    state
}

/// Strongly connected components of the directed graph `successors`, in
/// deterministic order (each component lists its nodes ascending; the
/// component list is ordered by smallest member).
///
/// Used by the storage-deadlock analysis: a deadlock is a cycle in the
/// waits-for graph, and every cycle lives inside one SCC of size ≥ 2
/// (tasks cannot wait on themselves). Iterative Tarjan — no recursion, so
/// adversarial proptest graphs cannot overflow the stack.
pub fn strongly_connected_components(successors: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = successors.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&(v, child)) = frames.last() {
            if child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = successors[v].get(child) {
                if let Some(frame) = frames.last_mut() {
                    frame.1 += 1;
                }
                if w >= n {
                    continue;
                }
                if index[w] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components.sort_by_key(|c| c[0]);
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> BTreeSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn chain_propagates_to_closure() {
        // 0 → 1 → 2, seed {7} at node 0.
        let seeds = vec![set(&[7]), set(&[]), set(&[])];
        let succ = vec![vec![1], vec![2], vec![]];
        let out = fixpoint_sets(seeds, &succ);
        assert_eq!(out, vec![set(&[7]), set(&[7]), set(&[7])]);
    }

    #[test]
    fn cycle_converges() {
        // 0 → 1 → 2 → 0 with distinct seeds: everyone ends with everything.
        let seeds = vec![set(&[1]), set(&[2]), set(&[3])];
        let succ = vec![vec![1], vec![2], vec![0]];
        let out = fixpoint_sets(seeds, &succ);
        let all = set(&[1, 2, 3]);
        assert_eq!(out, vec![all.clone(), all.clone(), all]);
    }

    #[test]
    fn diamond_joins_both_branches() {
        // 0 → {1, 2} → 3.
        let seeds = vec![set(&[9]), set(&[1]), set(&[2]), set(&[])];
        let succ = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let out = fixpoint_sets(seeds, &succ);
        assert_eq!(out[3], set(&[1, 2, 9]));
    }

    #[test]
    fn hostile_edges_are_ignored() {
        let seeds = vec![set(&[1]), set(&[])];
        // Self-loop and out-of-range target.
        let succ = vec![vec![0, 5, 1], vec![]];
        let out = fixpoint_sets(seeds, &succ);
        assert_eq!(out[1], set(&[1]));
    }

    #[test]
    fn sccs_found_deterministically() {
        // 0 ↔ 1, 2 → 0, 3 ↔ 4, 5 alone.
        let succ = vec![vec![1], vec![0], vec![0], vec![4], vec![3], vec![]];
        let sccs = strongly_connected_components(&succ);
        let nontrivial: Vec<_> = sccs.into_iter().filter(|c| c.len() > 1).collect();
        assert_eq!(nontrivial, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn acyclic_graph_has_singleton_sccs() {
        let succ = vec![vec![1, 2], vec![2], vec![]];
        let sccs = strongly_connected_components(&succ);
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert_eq!(sccs.len(), 3);
    }
}
