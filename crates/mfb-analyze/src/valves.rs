//! Valve-conflict analysis: `ANA-VALVE-001`.
//!
//! The control layer steers flows by opening and closing microvalves at
//! channel junctions (see `mfb-control`'s [`ValveNetwork`]). A routed
//! solution implies, for every junction valve — the gate on one incident
//! edge `(junction, neighbour)` — a set of *open* requirements (some task
//! traverses that edge during a window) and a set of *close* requirements
//! (a different flow passes the junction on other branches, or a plug is
//! parked behind the valve and must stay isolated). If one valve must be
//! simultaneously open for one fluid and closed for another, no control
//! sequence can execute the plan; that is a valve conflict.
//!
//! Requirements of the same task or the same fluid never conflict — a
//! plug splitting at a junction is physically one flow.

use crate::ir::OccupancyIr;
use crate::AnalysisInput;
use mfb_control::ValveNetwork;
use mfb_model::prelude::*;
use mfb_verify::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

pub(crate) const RULE_VALVE: &str = "ANA-VALVE-001";

/// One requirement on a valve: `task` (carrying `fluid`) needs it in a
/// fixed state over `window`.
#[derive(Debug, Clone, Copy)]
struct Demand {
    task: TaskId,
    fluid: OpId,
    window: Interval,
}

/// Runs the valve-conflict analysis over the shared IR.
pub(crate) fn analyze(ir: &OccupancyIr, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
    let network = ValveNetwork::build(input.routing, input.placement);
    mfb_obs::obs_counter!("analyze.junctions", network.junction_count() as u64);

    // Valve key: (junction, gated neighbour). BTreeMap keeps the report
    // order deterministic; demand lists inherit path/segment order.
    let mut opens: BTreeMap<(CellPos, CellPos), Vec<Demand>> = BTreeMap::new();
    let mut closes: BTreeMap<(CellPos, CellPos), Vec<Demand>> = BTreeMap::new();

    for path in &input.routing.paths {
        let n = path.cells.len().min(path.windows.len());
        for i in 0..n {
            let cell = path.cells[i];
            if !network.is_junction(cell) {
                continue;
            }
            let window = path.windows[i];
            let mut used: BTreeSet<CellPos> = BTreeSet::new();
            for step in [i.wrapping_sub(1), i + 1] {
                let Some(&nb) = (step < n).then(|| &path.cells[step]) else {
                    continue;
                };
                if nb == cell {
                    continue;
                }
                used.insert(nb);
                // The valve on the traversed edge is open while the plug
                // crosses: the shared part of both cells' windows.
                let w = path.windows[step];
                if window.overlaps(w) {
                    let open = Interval::new(window.start.max(w.start), window.end.min(w.end));
                    opens.entry((cell, nb)).or_default().push(Demand {
                        task: path.task,
                        fluid: path.fluid,
                        window: open,
                    });
                }
            }
            // Every other branch of the junction is held closed while the
            // plug is present, so the flow cannot fork.
            for nb in network.channel_neighbours(cell) {
                if !used.contains(&nb) {
                    closes.entry((cell, nb)).or_default().push(Demand {
                        task: path.task,
                        fluid: path.fluid,
                        window,
                    });
                }
            }
        }
    }

    // Parked-plug isolation: while a fluid is cached, every junction valve
    // facing its parked cells is closed so the plug cannot drift.
    for seg in ir.storage() {
        for &(cell, parked) in &seg.cells {
            let dwell = seg.cache;
            if !parked.overlaps(dwell) {
                continue;
            }
            let hold = Interval::new(parked.start.max(dwell.start), parked.end.min(dwell.end));
            let demand = Demand {
                task: seg.task,
                fluid: seg.fluid,
                window: hold,
            };
            for nb in network.channel_neighbours(cell) {
                if network.is_junction(nb) {
                    closes.entry((nb, cell)).or_default().push(demand);
                }
                if network.is_junction(cell) {
                    closes.entry((cell, nb)).or_default().push(demand);
                }
            }
        }
    }

    let mut diagnostics = Vec::new();
    let mut reported: BTreeSet<(CellPos, CellPos, TaskId, TaskId)> = BTreeSet::new();
    for (&(junction, neighbour), open_list) in &opens {
        let Some(close_list) = closes.get(&(junction, neighbour)) else {
            continue;
        };
        for open in open_list {
            for close in close_list {
                if open.task == close.task
                    || open.fluid == close.fluid
                    || !open.window.overlaps(close.window)
                {
                    continue;
                }
                if !reported.insert((junction, neighbour, open.task, close.task)) {
                    continue;
                }
                let clash = Interval::new(
                    open.window.start.max(close.window.start),
                    open.window.end.min(close.window.end),
                );
                diagnostics.push(Diagnostic {
                    rule: RULE_VALVE.into(),
                    severity: Severity::Error,
                    message: format!(
                        "valve {junction}-{neighbour} must be open for {} ({}) and closed \
                         for {} ({}) at the same time",
                        open.task, open.fluid, close.task, close.fluid
                    ),
                    location: Location::Cell(junction),
                    window: Some(clash),
                });
            }
        }
    }
    diagnostics
}
