//! Storage-liveness analysis: `ANA-STORE-001` and `ANA-STORE-002`.
//!
//! Distributed channel storage gives every cached fluid a *live range* —
//! the dwell `[arrive, consumed_at)` over its parked cells. Two liveness
//! properties must hold for the storage plan to be executable:
//!
//! 1. **Exclusive residency** (`ANA-STORE-001`): two different stored
//!    fluids must never be live in the same channel cell at once. The
//!    check intersects every pair of storage segments' parked footprints.
//! 2. **Acyclic release order** (`ANA-STORE-002`): a stored plug is
//!    released only when its consumer starts, and the consumer starts only
//!    when *all* its inputs have arrived. If task `A`'s parked plug sits
//!    on task `B`'s route while `B` delivers another input of `A`'s
//!    consumer (directly or transitively), nobody can move: a storage
//!    deadlock. The check builds the waits-for graph — *release-waits*
//!    edges from a stored task to every co-input transport of its
//!    consumer, *blocked-by* edges from a task whose route crosses a live
//!    parked cell to the storing task — and reports every strongly
//!    connected component of size ≥ 2.

use crate::engine::strongly_connected_components;
use crate::ir::OccupancyIr;
use crate::AnalysisInput;
use mfb_model::prelude::*;
use mfb_verify::prelude::*;
use std::collections::BTreeSet;

pub(crate) const RULE_OVERLAP: &str = "ANA-STORE-001";
pub(crate) const RULE_DEADLOCK: &str = "ANA-STORE-002";

/// Runs the storage-liveness analysis over the shared IR.
pub(crate) fn analyze(ir: &OccupancyIr, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let segments = ir.storage();

    // ---- ANA-STORE-001: overlapping storage residency.
    for i in 0..segments.len() {
        for j in (i + 1)..segments.len() {
            let (a, b) = (&segments[i], &segments[j]);
            if a.fluid == b.fluid {
                continue;
            }
            // First shared cell in path order is the reported witness;
            // both lists are small (plug length, typically 1–3 cells).
            let clash = a.cells.iter().find_map(|&(ca, wa)| {
                b.cells
                    .iter()
                    .find(|&&(cb, wb)| ca == cb && wa.overlaps(wb))
                    .map(|&(_, wb)| (ca, wa, wb))
            });
            if let Some((cell, wa, wb)) = clash {
                let overlap = Interval::new(wa.start.max(wb.start), wa.end.min(wb.end));
                diagnostics.push(Diagnostic {
                    rule: RULE_OVERLAP.into(),
                    severity: Severity::Error,
                    message: format!(
                        "stored plugs of {} ({}) and {} ({}) overlap in channel cell {}",
                        a.fluid, a.task, b.fluid, b.task, cell
                    ),
                    location: Location::Cell(cell),
                    window: Some(overlap),
                });
            }
        }
    }

    // ---- ANA-STORE-002: cycles in the waits-for graph.
    let n_tasks = input.schedule.transports().len();
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n_tasks];

    // Release-waits: a stored task cannot release until every co-input
    // transport of its consumer has arrived.
    for seg in segments {
        for other in input.schedule.transports() {
            if other.id != seg.task && other.consumer == seg.consumer {
                successors[seg.task.index()].push(other.id.index());
            }
        }
    }
    // Blocked-by: a task whose route needs a cell while a stored plug of a
    // different fluid is live there waits for that plug's release.
    let mut blocking_cells: Vec<(usize, usize, CellPos)> = Vec::new();
    for seg in segments {
        for &(cell, parked) in &seg.cells {
            for use_ in ir.cell(cell) {
                if use_.task == seg.task || use_.fluid == seg.fluid {
                    continue;
                }
                if use_.window.overlaps(parked) && use_.window.overlaps(seg.cache) {
                    successors[use_.task.index()].push(seg.task.index());
                    blocking_cells.push((use_.task.index(), seg.task.index(), cell));
                }
            }
        }
    }
    for list in &mut successors {
        list.sort_unstable();
        list.dedup();
    }

    for component in strongly_connected_components(&successors) {
        if component.len() < 2 {
            continue;
        }
        let members: BTreeSet<usize> = component.iter().copied().collect();
        let names = component
            .iter()
            .map(|&t| TaskId::new(t as u32).to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let mut cells: Vec<CellPos> = blocking_cells
            .iter()
            .filter(|(from, to, _)| members.contains(from) && members.contains(to))
            .map(|&(_, _, c)| c)
            .collect();
        // Two stored co-inputs of one consumer wait on each other's
        // *arrival* — a benign SCC unless some route is also physically
        // blocked. A real deadlock cycle passes through a blocked-by
        // edge: its presence inside the SCC implies a closing path back,
        // hence a cycle that can never resolve.
        if cells.is_empty() {
            continue;
        }
        cells.sort_unstable();
        cells.dedup();
        let at = cells
            .iter()
            .take(3)
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let window = segments
            .iter()
            .filter(|s| members.contains(&s.task.index()))
            .map(|s| s.cache)
            .reduce(Interval::hull);
        diagnostics.push(Diagnostic {
            rule: RULE_DEADLOCK.into(),
            severity: Severity::Error,
            message: format!(
                "storage deadlock: tasks {names} form a waits-for cycle{}",
                if at.is_empty() {
                    String::new()
                } else {
                    format!(" (stored plugs block routes at {at})")
                }
            ),
            location: Location::Task(TaskId::new(component[0] as u32)),
            window,
        });
    }

    diagnostics
}
