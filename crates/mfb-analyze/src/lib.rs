//! Cross-stage dataflow analysis over the DCSA synthesis IR.
//!
//! Where `mfb-verify` *checks* a solution rule by rule and `mfb-sim`
//! *replays* it event by event, this crate *analyses* it: it builds a
//! time-expanded occupancy IR from the routed solution once
//! ([`ir::OccupancyIr`]) and runs three fixpoint/graph analyses over it:
//!
//! | Rules | Analysis |
//! |---|---|
//! | `ANA-TAINT-001/002`, `ANA-WASH-001` | contamination taint: residue hand-offs on shared cells, provenance fixpoint with witness chains, unrealizable taint kills |
//! | `ANA-STORE-001/002` | storage liveness: overlapping channel-storage residency, waits-for deadlock cycles |
//! | `ANA-VALVE-001` | valve conflicts: junction valves required open and closed simultaneously (via `mfb-control`'s `ValveNetwork`) |
//!
//! Findings are ordinary [`mfb_verify::Diagnostic`]s, so the existing
//! pretty/JSON/SARIF renderers work unchanged; `mfb analyze` in the CLI
//! and `Solution::analyze` in `mfb-core` are thin wrappers over
//! [`Analyzer::run`]. By design the static findings are a superset of the
//! replay engine's contamination and conflict violations (see the
//! soundness tests), and the report is byte-identical for any
//! `MFB_THREADS` setting: the three analyses fan out via
//! `par_map_ordered` and each is internally deterministic.
//!
//! # Example
//!
//! ```no_run
//! use mfb_analyze::prelude::*;
//! # fn demo(graph: &mfb_model::prelude::SequencingGraph,
//! #         components: &mfb_model::prelude::ComponentSet,
//! #         schedule: &mfb_sched::prelude::Schedule,
//! #         placement: &mfb_place::prelude::Placement,
//! #         routing: &mfb_route::prelude::Routing,
//! #         wash: &dyn mfb_model::prelude::WashModel) {
//! let input = AnalysisInput::new(
//!     graph, components, schedule, placement, routing, wash,
//!     mfb_route::prelude::RouterConfig::paper(),
//! );
//! let report = Analyzer::with_all_rules().run(&input);
//! println!("{}", mfb_verify::render_pretty(&report));
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod engine;
pub mod ir;
mod liveness;
mod taint;
mod valves;

use mfb_model::par::par_map_ordered;
use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_route::prelude::{RouterConfig, Routing};
use mfb_sched::prelude::{FluidDelivery, Schedule};
use mfb_verify::prelude::*;
use std::collections::BTreeSet;

/// Borrowed view of one complete synthesis result, as the analyses see it.
///
/// Mirrors `mfb_verify::VerifyInput` but without the memoised legacy
/// checkers — the analyses here never call them.
#[derive(Debug)]
pub struct AnalysisInput<'a> {
    /// The bioassay being synthesised.
    pub graph: &'a SequencingGraph,
    /// The component allocation.
    pub components: &'a ComponentSet,
    /// Stage 1 result: operation schedule with transport tasks.
    pub schedule: &'a Schedule,
    /// Stage 2 result: the floorplan.
    pub placement: &'a Placement,
    /// Stage 3 result: routed paths with realized times.
    pub routing: &'a Routing,
    /// Wash model the solution was synthesised under.
    pub wash: &'a dyn WashModel,
    /// Router configuration (wash-plan feasibility checks need it).
    pub router_config: RouterConfig,
}

impl<'a> AnalysisInput<'a> {
    /// Bundles the artifacts of one synthesis run for analysis.
    pub fn new(
        graph: &'a SequencingGraph,
        components: &'a ComponentSet,
        schedule: &'a Schedule,
        placement: &'a Placement,
        routing: &'a Routing,
        wash: &'a dyn WashModel,
        router_config: RouterConfig,
    ) -> Self {
        AnalysisInput {
            graph,
            components,
            schedule,
            placement,
            routing,
            wash,
            router_config,
        }
    }

    /// `true` when every cross-reference in the artifacts resolves (same
    /// contract as `VerifyInput::ids_in_range`, extended to the routed
    /// paths' task/fluid ids). On a `false` result the analyzer stands
    /// down with an empty report instead of indexing out of range —
    /// matching the replay engine, which reports only shape mismatches
    /// (never contamination) for such inputs, so the superset guarantee
    /// holds trivially.
    pub fn ids_in_range(&self) -> bool {
        let n_ops = self.graph.len();
        let n_comps = self.components.len();
        let n_tasks = self.schedule.transports().len();
        let grid = self.placement.grid();
        let in_grid = |c: CellPos| c.x < grid.width && c.y < grid.height;
        self.schedule.ops().len() == n_ops
            && self.routing.paths.len() == n_tasks
            && self
                .schedule
                .ops()
                .all(|s| s.op.index() < n_ops && s.component.index() < n_comps)
            && self.schedule.transports().all(|t| {
                t.fluid.index() < n_ops
                    && t.consumer.index() < n_ops
                    && t.src.index() < n_comps
                    && t.dst.index() < n_comps
            })
            && self.schedule.deliveries().all(|&(p, c, ref d)| {
                p.index() < n_ops
                    && c.index() < n_ops
                    && if let FluidDelivery::Transported(t) = *d {
                        t.index() < n_tasks
                    } else {
                        true
                    }
            })
            && self.routing.paths.iter().all(|p| {
                p.fluid.index() < n_ops
                    && p.task.index() < n_tasks
                    && p.cells.len() == p.windows.len()
                    && p.cells.iter().all(|&c| in_grid(c))
            })
            && self
                .routing
                .channel_washes
                .iter()
                .all(|w| w.residue.index() < n_ops && w.task.index() < n_tasks && in_grid(w.cell))
            && self.routing.realized.start.len() == n_ops
            && self.routing.realized.end.len() == n_ops
    }
}

/// The static catalog of analysis rules, in rule-id order.
pub fn analysis_rules() -> Vec<RuleInfo> {
    vec![
        RuleInfo {
            id: "ANA-STORE-001",
            name: "storage-overlap",
            description: "Two different stored fluids are live in the same channel cell \
                          at overlapping times.",
            severity: Severity::Error,
        },
        RuleInfo {
            id: "ANA-STORE-002",
            name: "storage-deadlock",
            description: "Stored plugs and delivery routes form a waits-for cycle no \
                          control sequence can resolve.",
            severity: Severity::Error,
        },
        RuleInfo {
            id: "ANA-TAINT-001",
            name: "residual-contamination",
            description: "A fluid occupies a channel cell while a different fluid's plug \
                          or unwashed residue is still present.",
            severity: Severity::Error,
        },
        RuleInfo {
            id: "ANA-TAINT-002",
            name: "contamination-chain",
            description: "An operation's provenance fixpoint contains a non-ancestor \
                          fluid: contamination reaches it through a chain of channel \
                          hand-offs.",
            severity: Severity::Error,
        },
        RuleInfo {
            id: "ANA-VALVE-001",
            name: "valve-conflict",
            description: "A junction valve is required simultaneously open for one fluid \
                          and closed for another.",
            severity: Severity::Error,
        },
        RuleInfo {
            id: "ANA-WASH-001",
            name: "unrealizable-taint-kill",
            description: "A required channel wash has no feasible buffer flush in its \
                          time gap; the contamination kill it models is optimistic.",
            severity: Severity::Warning,
        },
    ]
}

/// The analysis driver: a toggleable set of `ANA-*` rules over one
/// [`AnalysisInput`].
///
/// Mirrors `mfb_verify::RuleRegistry`'s enable/disable surface so the CLI
/// can share its `--only`/`--skip` handling between `verify` and
/// `analyze`.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    disabled: BTreeSet<String>,
}

impl Analyzer {
    /// An analyzer with every rule enabled.
    pub fn with_all_rules() -> Self {
        Analyzer::default()
    }

    /// All known rules, enabled or not, in rule-id order.
    pub fn rules(&self) -> impl Iterator<Item = RuleInfo> {
        analysis_rules().into_iter()
    }

    /// Looks up one rule by id.
    pub fn rule(&self, id: &str) -> Option<RuleInfo> {
        analysis_rules().into_iter().find(|r| r.id == id)
    }

    /// Disables the rule with the given id (unknown ids are ignored).
    pub fn disable(&mut self, id: &str) {
        self.disabled.insert(id.to_string());
    }

    /// Re-enables a previously disabled rule.
    pub fn enable(&mut self, id: &str) {
        self.disabled.remove(id);
    }

    /// `true` when the rule will run.
    pub fn is_enabled(&self, id: &str) -> bool {
        !self.disabled.contains(id)
    }

    /// Keeps only the listed rules enabled, disabling every other one.
    pub fn retain_only<'i>(&mut self, ids: impl IntoIterator<Item = &'i str>) {
        let keep: BTreeSet<&str> = ids.into_iter().collect();
        for rule in analysis_rules() {
            if !keep.contains(rule.id) {
                self.disable(rule.id);
            }
        }
    }

    /// Runs every enabled analysis and returns the findings in canonical
    /// order (most severe first, then rule id, message, location, window;
    /// exact duplicates removed).
    ///
    /// The three analyses fan out via `par_map_ordered`, so the report is
    /// byte-identical for any `MFB_THREADS` setting.
    pub fn run(&self, input: &AnalysisInput<'_>) -> VerifyReport {
        let _span = mfb_obs::obs_span!("analyze.run");
        if !input.ids_in_range() {
            return VerifyReport::default();
        }
        let ir = ir::OccupancyIr::build(input);
        let run_taint = ["ANA-TAINT-001", "ANA-TAINT-002", "ANA-WASH-001"]
            .iter()
            .any(|id| self.is_enabled(id));
        let run_store = ["ANA-STORE-001", "ANA-STORE-002"]
            .iter()
            .any(|id| self.is_enabled(id));
        let run_valve = self.is_enabled("ANA-VALVE-001");
        let parts = par_map_ordered(3, |which| match which {
            0 if run_taint => {
                let _span = mfb_obs::obs_span!("analyze.taint");
                taint::analyze(&ir, input)
            }
            1 if run_store => {
                let _span = mfb_obs::obs_span!("analyze.liveness");
                liveness::analyze(&ir, input)
            }
            2 if run_valve => {
                let _span = mfb_obs::obs_span!("analyze.valves");
                valves::analyze(&ir, input)
            }
            _ => Vec::new(),
        });
        let mut diagnostics: Vec<Diagnostic> = parts.into_iter().flatten().collect();
        diagnostics.retain(|d| self.is_enabled(&d.rule));
        mfb_obs::obs_counter!("analyze.findings", diagnostics.len() as u64);
        VerifyReport::sorted(diagnostics)
    }
}

/// Everything an analysis consumer normally needs.
pub mod prelude {
    pub use crate::ir::{CellUse, OccupancyIr, OccupancyKind, StorageSegment};
    pub use crate::{analysis_rules, AnalysisInput, Analyzer};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_catalog_is_sorted_and_unique() {
        let rules = analysis_rules();
        let ids: Vec<&str> = rules.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "catalog must be id-sorted and duplicate-free");
        assert!(ids.iter().all(|id| id.starts_with("ANA-")));
    }

    #[test]
    fn toggling_rules() {
        let mut a = Analyzer::with_all_rules();
        assert!(a.is_enabled("ANA-TAINT-001"));
        a.disable("ANA-TAINT-001");
        assert!(!a.is_enabled("ANA-TAINT-001"));
        a.enable("ANA-TAINT-001");
        assert!(a.is_enabled("ANA-TAINT-001"));
        a.retain_only(["ANA-VALVE-001"]);
        assert!(a.is_enabled("ANA-VALVE-001"));
        assert!(!a.is_enabled("ANA-TAINT-001"));
        assert!(!a.is_enabled("ANA-STORE-002"));
        assert!(a.rule("ANA-WASH-001").is_some());
        assert!(a.rule("DRC-ROUTE-003").is_none());
    }
}
