//! The shared analysis IR: a time-expanded occupancy map of the chip.
//!
//! Every analysis in this crate asks the same two questions — *which fluid
//! sits in which cell when*, and *which of those occupancies are channel
//! storage*. [`OccupancyIr::build`] answers both once, from the routed
//! paths and the schedule's transport tasks, and the three analyses share
//! the result read-only. The construction mirrors `mfb-sim`'s replay
//! timeline (same sort key, same exact-duplicate merge, same off-grid
//! guard) so static findings and dynamic replay violations land on the
//! same events.

use crate::AnalysisInput;
use mfb_model::prelude::*;
use std::collections::BTreeMap;

/// Why a fluid occupies a cell during a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OccupancyKind {
    /// The plug is moving through the cell (transport leg only).
    Transit,
    /// The plug is parked in the cell — the window covers part of the
    /// task's channel-storage dwell.
    Parked,
}

/// One cell-occupancy event: `task` holds `fluid` in a cell over `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellUse {
    /// Occupancy window on this cell (realized times).
    pub window: Interval,
    /// The transport task occupying the cell.
    pub task: TaskId,
    /// The fluid (producer operation) the task carries.
    pub fluid: OpId,
    /// Transit or parked (see [`OccupancyKind`]).
    pub kind: OccupancyKind,
    /// First instant a *different* fluid may use this cell without picking
    /// up residue: `window.end + wash_time(fluid)`, saturating at the tick
    /// ceiling. This is the taint analysis' kill point.
    pub clean_at: Instant,
}

/// The parked portion of one cached transport: where and when a fluid
/// lives in channel storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageSegment {
    /// The transport task doing the caching.
    pub task: TaskId,
    /// The stored fluid.
    pub fluid: OpId,
    /// The operation that eventually consumes the stored fluid.
    pub consumer: OpId,
    /// The channel-storage dwell `[arrive, consumed_at)`.
    pub cache: Interval,
    /// Parked cells with their full occupancy windows, in path order.
    pub cells: Vec<(CellPos, Interval)>,
}

/// The time-expanded occupancy map all analyses run on.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyIr {
    grid: GridSpec,
    /// Per-cell occupancy lists, sorted by `(window, task)` and merged on
    /// exact duplicates (a remote-parking task books its splice cell
    /// twice). Only cells some path actually uses appear.
    cells: BTreeMap<CellPos, Vec<CellUse>>,
    /// One segment per transport with a positive channel-storage dwell,
    /// in `TaskId` order.
    storage: Vec<StorageSegment>,
}

impl OccupancyIr {
    /// Builds the occupancy map for one synthesis result.
    pub fn build(input: &AnalysisInput<'_>) -> OccupancyIr {
        let _span = mfb_obs::obs_span!("analyze.ir", paths = input.routing.paths.len() as u64);
        let grid = input.placement.grid();
        let transports: Vec<_> = input.schedule.transports().collect();

        let mut cells: BTreeMap<CellPos, Vec<CellUse>> = BTreeMap::new();
        let mut storage: Vec<StorageSegment> = Vec::new();
        for path in &input.routing.paths {
            // The dwell this task was scheduled with; paths beyond the
            // transport table (guarded against by `AnalysisInput::
            // ids_in_range`, but kept safe here) count as uncached.
            let cache = transports
                .get(path.task.index())
                .filter(|t| t.id == path.task && t.arrive < t.consumed_at)
                .map(|t| Interval::new(t.arrive, t.consumed_at));
            let mut parked: Vec<(CellPos, Interval)> = Vec::new();
            let wash = input
                .wash
                .wash_time(input.graph.op(path.fluid).output_diffusion());
            for (cell, window) in path.occupancies() {
                if !grid.contains(cell) {
                    continue;
                }
                let kind = match cache {
                    Some(c) if window.overlaps(c) => OccupancyKind::Parked,
                    _ => OccupancyKind::Transit,
                };
                if kind == OccupancyKind::Parked {
                    parked.push((cell, window));
                }
                cells.entry(cell).or_default().push(CellUse {
                    window,
                    task: path.task,
                    fluid: path.fluid,
                    kind,
                    clean_at: Instant::from_ticks(
                        window.end.as_ticks().saturating_add(wash.as_ticks()),
                    ),
                });
            }
            if let (Some(cache), false) = (cache, parked.is_empty()) {
                let consumer = transports
                    .get(path.task.index())
                    .map(|t| t.consumer)
                    .unwrap_or(path.fluid);
                storage.push(StorageSegment {
                    task: path.task,
                    fluid: path.fluid,
                    consumer,
                    cache,
                    cells: parked,
                });
            }
        }
        for uses in cells.values_mut() {
            uses.sort();
            uses.dedup();
        }
        storage.sort_by_key(|s| s.task);
        mfb_obs::obs_counter!("analyze.storage_segments", storage.len() as u64);
        OccupancyIr {
            grid,
            cells,
            storage,
        }
    }

    /// The grid geometry the occupancies live on.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// All used cells with their occupancy lists, in cell order. Each list
    /// is sorted by `(window, task)`.
    pub fn cells(&self) -> impl Iterator<Item = (CellPos, &[CellUse])> {
        self.cells.iter().map(|(&c, uses)| (c, uses.as_slice()))
    }

    /// The occupancy list of one cell (empty if no path uses it).
    pub fn cell(&self, cell: CellPos) -> &[CellUse] {
        self.cells.get(&cell).map_or(&[], Vec::as_slice)
    }

    /// Channel-storage segments, in `TaskId` order.
    pub fn storage(&self) -> &[StorageSegment] {
        &self.storage
    }

    /// Number of distinct cells any path uses.
    pub fn used_cells(&self) -> usize {
        self.cells.len()
    }
}
