//! Contamination-taint analysis: `ANA-TAINT-001`, `ANA-TAINT-002` and
//! `ANA-WASH-001`.
//!
//! A fluid plug leaves residue in every channel cell it touches, and the
//! residue stays contaminating until a wash completes (§II-B of the
//! paper). The analysis models this as taint: residue of fluid `F` in cell
//! `c` is *live* over `[window.end, window.end + wash_time(F))`, and any
//! different fluid occupying `c` while either the plug itself or its
//! residue is live picks the taint up (`ANA-TAINT-001`). This is a strict
//! superset of the replay engine's conflict classes: replay checks
//! overlapping pairs and *consecutive* wash gaps; taint checks every
//! ordered pair against the residue horizon.
//!
//! Picked-up taint then *flows*: the contaminated plug delivers to its
//! consumer, the consumer's output fluid carries the contaminant onward,
//! and later transports of that output spread it further. The provenance
//! fixpoint (over the powerset-of-operations lattice, union join) computes
//! where each operation's residue can reach; an operation whose provenance
//! contains a non-ancestor is flagged with a witness chain
//! (`ANA-TAINT-002`). Finally, wash feasibility is checked against the
//! routed wash plan: a taint kill the planner could not realize as a
//! buffer flush is reported as `ANA-WASH-001`.

use crate::engine::fixpoint_sets;
use crate::ir::OccupancyIr;
use crate::AnalysisInput;
use mfb_model::prelude::*;
use mfb_route::prelude::plan_washes;
use mfb_sched::prelude::FluidDelivery;
use mfb_verify::prelude::*;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Severity-stable rule ids (must match [`crate::analysis_rules`]).
pub(crate) const RULE_TAINT: &str = "ANA-TAINT-001";
pub(crate) const RULE_CHAIN: &str = "ANA-TAINT-002";
pub(crate) const RULE_WASH: &str = "ANA-WASH-001";

/// Runs the taint analysis over the shared IR.
pub(crate) fn analyze(ir: &OccupancyIr, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
    let n_tasks = input.schedule.transports().len();
    let n_ops = input.graph.len();
    let n_nodes = n_tasks + n_ops;
    let node_of_task = |t: TaskId| t.index();
    let node_of_op = |o: OpId| n_tasks + o.index();

    let mut diagnostics = Vec::new();

    // ---- Taint edges: residue hand-offs between tasks on shared cells.
    //
    // Edges carry the provenance flow of the fixpoint below; each also
    // yields one ANA-TAINT-001 finding. `labels` remembers the smallest
    // (cell, window) evidence per node pair for witness rendering.
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    let mut labels: BTreeMap<(usize, usize), (CellPos, Interval)> = BTreeMap::new();
    let mut edge_count = 0u64;
    let add_edge = |successors: &mut Vec<Vec<usize>>,
                    labels: &mut BTreeMap<(usize, usize), (CellPos, Interval)>,
                    from: usize,
                    to: usize,
                    evidence: (CellPos, Interval)| {
        successors[from].push(to);
        labels
            .entry((from, to))
            .and_modify(|e| *e = (*e).min(evidence))
            .or_insert(evidence);
    };
    for (cell, uses) in ir.cells() {
        for i in 0..uses.len() {
            for j in (i + 1)..uses.len() {
                let (a, b) = (&uses[i], &uses[j]);
                if a.fluid == b.fluid {
                    continue; // aliquots of one plug: no contamination
                }
                if a.window.overlaps(b.window) {
                    // Conflict class 1–2: both plugs present at once; the
                    // mixing contaminates both directions.
                    let overlap = Interval::new(
                        a.window.start.max(b.window.start),
                        a.window.end.min(b.window.end),
                    );
                    let ta = node_of_task(a.task);
                    let tb = node_of_task(b.task);
                    add_edge(&mut successors, &mut labels, ta, tb, (cell, overlap));
                    add_edge(&mut successors, &mut labels, tb, ta, (cell, overlap));
                    edge_count += 2;
                    diagnostics.push(Diagnostic {
                        rule: RULE_TAINT.into(),
                        severity: Severity::Error,
                        message: format!(
                            "plugs of {} ({}) and {} ({}) occupy cell {} at overlapping times",
                            a.fluid, a.task, b.fluid, b.task, cell
                        ),
                        location: Location::Cell(cell),
                        window: Some(overlap),
                    });
                } else if a.window.end <= b.window.start && a.clean_at > b.window.start {
                    // Uses are start-sorted, so the disjoint case has `a`
                    // strictly first: `b` drives through `a`'s residue.
                    let end = a.clean_at.min(b.window.end).max(b.window.start);
                    let evidence = Interval::new(b.window.start, end);
                    let ta = node_of_task(a.task);
                    let tb = node_of_task(b.task);
                    add_edge(&mut successors, &mut labels, ta, tb, (cell, evidence));
                    edge_count += 1;
                    diagnostics.push(Diagnostic {
                        rule: RULE_TAINT.into(),
                        severity: Severity::Error,
                        message: format!(
                            "residue of {} ({}) in cell {} is not washed before {} ({}) \
                             passes through",
                            a.fluid, a.task, cell, b.fluid, b.task
                        ),
                        location: Location::Cell(cell),
                        window: Some(evidence),
                    });
                }
            }
        }
    }
    mfb_obs::obs_counter!("analyze.taint_edges", edge_count);

    // ---- Provenance fixpoint.
    //
    // Seed every node with its *legitimate* provenance (the fluid it is
    // supposed to contain: the producing op and all its assay ancestors),
    // then close over the flow edges. Without taint edges the closure
    // stays inside the seeds — delivery edges only ever move a provenance
    // set into a descendant whose legitimate set already contains it — so
    // ANA-TAINT-002 can only fire downstream of an ANA-TAINT-001.
    let legit = legitimate_sets(input.graph);
    let mut seeds: Vec<BTreeSet<OpId>> = vec![BTreeSet::new(); n_nodes];
    for o in input.graph.op_ids() {
        seeds[node_of_op(o)] = legit[o.index()].clone();
    }
    for t in input.schedule.transports() {
        seeds[node_of_task(t.id)] = legit[t.fluid.index()].clone();
        // Pickup: the task carries whatever ended up in its fluid's
        // producing op; delivery: the consumer receives whatever the task
        // picked up on the way.
        successors[node_of_op(t.fluid)].push(node_of_task(t.id));
        successors[node_of_task(t.id)].push(node_of_op(t.consumer));
    }
    for &(parent, child, delivery) in input.schedule.deliveries() {
        if matches!(delivery, FluidDelivery::InPlace) {
            successors[node_of_op(parent)].push(node_of_op(child));
        }
    }
    for list in &mut successors {
        list.sort_unstable();
        list.dedup();
    }
    let state = fixpoint_sets(seeds.clone(), &successors);

    // ---- ANA-TAINT-002: operations whose provenance escaped its seeds.
    for o in input.graph.op_ids() {
        let contaminants: Vec<OpId> = state[node_of_op(o)]
            .difference(&legit[o.index()])
            .copied()
            .collect();
        let Some(&first) = contaminants.first() else {
            continue;
        };
        let chain = witness_chain(&seeds, &successors, &labels, first, node_of_op(o), n_tasks);
        let listed = contaminants
            .iter()
            .take(4)
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let more = contaminants.len().saturating_sub(4);
        diagnostics.push(Diagnostic {
            rule: RULE_CHAIN.into(),
            severity: Severity::Error,
            message: format!(
                "operation {o} can receive residue of non-ancestor {listed}{} via {chain}",
                if more > 0 {
                    format!(" (+{more} more)")
                } else {
                    String::new()
                },
            ),
            location: Location::Op(o),
            window: None,
        });
    }

    // ---- ANA-WASH-001: taint kills the wash planner could not realize.
    let plan = plan_washes(
        input.routing,
        input.schedule,
        input.graph,
        input.placement,
        input.wash,
        &input.router_config,
    );
    for w in &plan.unplanned {
        diagnostics.push(Diagnostic {
            rule: RULE_WASH.into(),
            severity: Severity::Warning,
            message: format!(
                "taint kill assumed before {}: residue of {} in cell {} has no feasible \
                 buffer flush ({} needed)",
                w.task, w.residue, w.cell, w.duration
            ),
            location: Location::Cell(w.cell),
            window: None,
        });
    }

    diagnostics
}

/// `legit[o] = {o} ∪ ancestors(o)`: everything allowed to appear in `o`'s
/// provenance. Computed in one topological pass.
fn legitimate_sets(graph: &SequencingGraph) -> Vec<BTreeSet<OpId>> {
    let mut legit: Vec<BTreeSet<OpId>> = vec![BTreeSet::new(); graph.len()];
    for &o in graph.topological_order() {
        let mut set = BTreeSet::new();
        for &p in graph.parents(o) {
            set.extend(legit[p.index()].iter().copied());
        }
        set.insert(o);
        legit[o.index()] = set;
    }
    legit
}

/// Shortest flow chain carrying contaminant `z` into `target`, rendered
/// like `o2 -> tk1 -[cell (3,4)]-> tk4 -> o5`. Deterministic: BFS from all
/// `z`-seeded nodes in index order, neighbours visited ascending.
fn witness_chain(
    seeds: &[BTreeSet<OpId>],
    successors: &[Vec<usize>],
    labels: &BTreeMap<(usize, usize), (CellPos, Interval)>,
    z: OpId,
    target: usize,
    n_tasks: usize,
) -> String {
    let name = |node: usize| {
        if node < n_tasks {
            TaskId::new(node as u32).to_string()
        } else {
            OpId::new((node - n_tasks) as u32).to_string()
        }
    };
    let mut parent: Vec<Option<usize>> = vec![None; seeds.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut seen = vec![false; seeds.len()];
    for (node, seed) in seeds.iter().enumerate() {
        if seed.contains(&z) {
            seen[node] = true;
            queue.push_back(node);
        }
    }
    while let Some(u) = queue.pop_front() {
        if u == target {
            let mut nodes = vec![u];
            let mut cur = u;
            while let Some(p) = parent[cur] {
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            let mut out = name(nodes[0]);
            for pair in nodes.windows(2) {
                match labels.get(&(pair[0], pair[1])) {
                    Some(&(cell, _)) => {
                        out.push_str(&format!(" -[cell {cell}]-> {}", name(pair[1])));
                    }
                    None => out.push_str(&format!(" -> {}", name(pair[1]))),
                }
            }
            return out;
        }
        for &v in &successors[u] {
            if v < seen.len() && !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    // `z` is in target's fixpoint state, so a chain always exists; this
    // arm only guards against inconsistent inputs.
    format!("unknown chain for {z}")
}
