//! Property-based tests: both schedulers produce valid schedules on
//! arbitrary synthetic assays, and the engine's invariants hold.

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_model::prelude::*;
use mfb_sched::prelude::*;
use proptest::prelude::*;

fn arb_alloc() -> impl Strategy<Value = Allocation> {
    (1u32..4, 1u32..3, 1u32..3, 1u32..3).prop_map(|(m, h, f, d)| Allocation::new(m, h, f, d))
}

fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (1usize..60, any::<u64>()).prop_map(|(n, seed)| SyntheticSpec::new(n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_are_always_valid(spec in arb_spec(), alloc in arb_alloc()) {
        let g = spec.generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        for cfg in [SchedulerConfig::paper_dcsa(), SchedulerConfig::paper_baseline()] {
            let s = schedule(&g, &comps, &wash, &cfg).unwrap();
            let v = validate(&s, &g, &comps);
            prop_assert!(v.is_empty(), "violations: {:?}", v);
        }
    }

    #[test]
    fn every_edge_has_exactly_one_delivery(spec in arb_spec(), alloc in arb_alloc()) {
        let g = spec.generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        prop_assert_eq!(s.deliveries().len(), g.edge_count());
        prop_assert_eq!(
            s.transports().len() + s.in_place_count(),
            g.edge_count()
        );
    }

    #[test]
    fn cache_times_are_nonnegative_and_consistent(spec in arb_spec(), alloc in arb_alloc()) {
        let g = spec.generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let mut total = Duration::ZERO;
        for t in s.transports() {
            prop_assert!(t.arrive == t.depart + s.t_c);
            prop_assert!(t.consumed_at >= t.arrive);
            total += t.cache_time();
        }
        prop_assert_eq!(total, s.total_cache_time());
    }

    #[test]
    fn utilization_is_a_fraction(spec in arb_spec(), alloc in arb_alloc()) {
        let g = spec.generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        for cfg in [SchedulerConfig::paper_dcsa(), SchedulerConfig::paper_baseline()] {
            let s = schedule(&g, &comps, &wash, &cfg).unwrap();
            let u = resource_utilization(&s, &comps);
            prop_assert!((0.0..=1.0).contains(&u), "u = {}", u);
        }
    }

    #[test]
    fn dcsa_completion_never_exceeds_baseline_by_much(
        spec in arb_spec(), alloc in arb_alloc()
    ) {
        // Greedy list scheduling gives no absolute guarantee, but across
        // random instances the storage-aware rule should essentially never
        // be more than a whisker worse (it can tie or win).
        let g = spec.generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        let ours = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let ba = schedule(&g, &comps, &wash, &SchedulerConfig::paper_baseline()).unwrap();
        let o = ours.completion_time().as_secs_f64();
        let b = ba.completion_time().as_secs_f64();
        prop_assert!(o <= b * 1.25 + 5.0, "ours {} vs BA {}", o, b);
    }

    #[test]
    fn washes_never_overlap_ops_on_component(spec in arb_spec(), alloc in arb_alloc()) {
        let g = spec.generate();
        let comps = alloc.instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        for w in s.washes() {
            for op in s.ops().filter(|o| o.component == w.component) {
                prop_assert!(
                    !w.interval().overlaps(op.interval()),
                    "wash {:?} overlaps {:?}", w, op
                );
            }
        }
    }
}
