//! Scheduler behaviour on the paper's Table-I benchmarks.

use mfb_bench_suite::{motivating_example, table1_benchmarks};
use mfb_model::prelude::*;
use mfb_sched::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

#[test]
fn both_schedulers_produce_valid_schedules_on_all_benchmarks() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        for cfg in [
            SchedulerConfig::paper_dcsa(),
            SchedulerConfig::paper_baseline(),
        ] {
            let s = schedule(&b.graph, &comps, &wash(), &cfg).unwrap();
            let v = validate(&s, &b.graph, &comps);
            assert!(v.is_empty(), "{}: violations {v:?}", b.name);
        }
    }
}

#[test]
fn dcsa_never_loses_to_baseline_on_completion_time() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        let ours = schedule(&b.graph, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let ba = schedule(
            &b.graph,
            &comps,
            &wash(),
            &SchedulerConfig::paper_baseline(),
        )
        .unwrap();
        assert!(
            ours.completion_time() <= ba.completion_time(),
            "{}: ours {} vs BA {}",
            b.name,
            ours.completion_time(),
            ba.completion_time()
        );
    }
}

#[test]
fn dcsa_improves_on_larger_benchmarks() {
    // The paper's shape: PCR/IVD tie; CPA and the synthetics improve.
    let lib = ComponentLibrary::default();
    let mut improvements = Vec::new();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        let ours = schedule(&b.graph, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let ba = schedule(
            &b.graph,
            &comps,
            &wash(),
            &SchedulerConfig::paper_baseline(),
        )
        .unwrap();
        let o = ours.completion_time().as_secs_f64();
        let a = ba.completion_time().as_secs_f64();
        improvements.push((b.name, (a - o) / a));
    }
    let improved = improvements.iter().filter(|(_, imp)| *imp > 0.0).count();
    assert!(
        improved >= 3,
        "expected several benchmarks to improve, got {improvements:?}"
    );
}

#[test]
fn dcsa_reduces_cache_time_overall() {
    let lib = ComponentLibrary::default();
    let mut ours_total = Duration::ZERO;
    let mut ba_total = Duration::ZERO;
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        let ours = schedule(&b.graph, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let ba = schedule(
            &b.graph,
            &comps,
            &wash(),
            &SchedulerConfig::paper_baseline(),
        )
        .unwrap();
        ours_total += ours.total_cache_time();
        ba_total += ba.total_cache_time();
    }
    assert!(
        ours_total <= ba_total,
        "total cache time: ours {ours_total} vs BA {ba_total}"
    );
}

#[test]
fn dcsa_uses_in_place_deliveries_on_real_assays() {
    let lib = ComponentLibrary::default();
    for name in ["PCR", "CPA"] {
        let b = table1_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap();
        let comps = b.components(&lib);
        let s = schedule(&b.graph, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        assert!(
            s.in_place_count() > 0,
            "{name}: expected Case-I in-place deliveries"
        );
    }
}

#[test]
fn motivating_example_dcsa_beats_baseline() {
    let b = motivating_example();
    let comps = b.components(&ComponentLibrary::default());
    let ours = schedule(&b.graph, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
    let ba = schedule(
        &b.graph,
        &comps,
        &wash(),
        &SchedulerConfig::paper_baseline(),
    )
    .unwrap();
    assert!(ours.completion_time() <= ba.completion_time());
    // The paper's Fig. 3 contrast: the storage-aware schedule achieves
    // higher resource utilization.
    let u_ours = resource_utilization(&ours, &comps);
    let u_ba = resource_utilization(&ba, &comps);
    assert!(
        u_ours >= u_ba,
        "utilization: ours {u_ours:.3} vs BA {u_ba:.3}"
    );
}

#[test]
fn schedules_are_deterministic() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        let a = schedule(&b.graph, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        let c = schedule(&b.graph, &comps, &wash(), &SchedulerConfig::paper_dcsa()).unwrap();
        assert_eq!(a, c, "{} schedule not deterministic", b.name);
    }
}

#[test]
fn completion_respects_critical_path_lower_bound() {
    let lib = ComponentLibrary::default();
    for b in table1_benchmarks() {
        let comps = b.components(&lib);
        for cfg in [
            SchedulerConfig::paper_dcsa(),
            SchedulerConfig::paper_baseline(),
        ] {
            let s = schedule(&b.graph, &comps, &wash(), &cfg).unwrap();
            // The critical path assumes every edge pays t_c; in-place
            // deliveries can only shorten it, so use the zero-transport
            // bound instead.
            let lower = b.graph.critical_path(Duration::ZERO);
            assert!(
                s.completion_time().as_ticks() >= lower.as_ticks(),
                "{}: completion below critical path",
                b.name
            );
        }
    }
}
