//! Scheduling errors.

use mfb_model::prelude::*;
use std::fmt;

/// Errors produced by binding and scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// An operation requires a component kind of which none are allocated.
    NoComponentForKind {
        /// The operation that cannot be bound.
        op: OpId,
        /// The missing component kind.
        kind: ComponentKind,
    },
    /// Components of the required kind exist, but the defect map marks
    /// every one of them dead.
    AllComponentsDead {
        /// The operation that cannot be bound.
        op: OpId,
        /// The kind whose instances are all dead.
        kind: ComponentKind,
        /// How many components of that kind the allocation has (all dead).
        allocated: usize,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoComponentForKind { op, kind } => write!(
                f,
                "operation {op} needs a {kind}, but the allocation contains none"
            ),
            SchedError::AllComponentsDead {
                op,
                kind,
                allocated,
            } => write!(
                f,
                "operation {op} needs a {kind}, but all {allocated} allocated are marked dead in the defect map"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_kind() {
        let e = SchedError::NoComponentForKind {
            op: OpId::new(3),
            kind: ComponentKind::Filter,
        };
        let msg = e.to_string();
        assert!(msg.contains("o3"));
        assert!(msg.contains("filter"));
    }
}
