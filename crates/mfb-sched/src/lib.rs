//! Resource binding and scheduling for DCSA-based biochips.
//!
//! Implements the paper's **Algorithm 1**: priority-driven list scheduling
//! with storage-aware binding (Case I / Case II), next to the **baseline
//! (BA)** earliest-ready binding it is evaluated against, plus the schedule
//! data model, metrics (completion time, resource utilization Eq. (1),
//! channel-cache time) and an independent validator.
//!
//! # Quick start
//!
//! ```
//! use mfb_model::prelude::*;
//! use mfb_sched::prelude::*;
//!
//! // out(o0) and out(o1) merge in o2.
//! let mut b = SequencingGraph::builder();
//! let wash = LogLinearWash::paper_calibrated();
//! let d = DiffusionCoefficient::PROTEIN;
//! let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
//! let o1 = b.operation(OperationKind::Mix, Duration::from_secs(5), d);
//! let o2 = b.operation(OperationKind::Mix, Duration::from_secs(4), d);
//! b.edge(o0, o2).unwrap();
//! b.edge(o1, o2).unwrap();
//! let assay = b.build().unwrap();
//!
//! let chip = Allocation::new(2, 0, 0, 0).instantiate(&ComponentLibrary::default());
//! let sched = schedule(&assay, &chip, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
//!
//! // o2 reuses one parent's mixer (Case I): one transport, one in-place.
//! assert_eq!(sched.in_place_count(), 1);
//! assert_eq!(sched.transports().len(), 1);
//! assert!(validate(&sched, &assay, &chip).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod error;
pub mod exact;
pub mod list;
pub mod metrics;
pub mod schedule;
pub mod validate;

/// One-stop import of the scheduling API.
pub mod prelude {
    pub use crate::analysis::{parallelism_profile, TimingAnalysis};
    pub use crate::error::SchedError;
    pub use crate::exact::{optimal_makespan, MAX_EXACT_OPS};
    pub use crate::list::{schedule, schedule_with_defects, BindingRule, SchedulerConfig};
    pub use crate::metrics::{
        component_usage, resource_utilization, ComponentUsage, ScheduleMetrics,
    };
    pub use crate::schedule::{FluidDelivery, Schedule, ScheduledOp, TransportTask, WashEvent};
    pub use crate::validate::{validate, ScheduleViolation};
}
