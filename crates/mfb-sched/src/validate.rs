//! Independent schedule validation.
//!
//! [`validate`] re-checks every invariant a correct binding-and-scheduling
//! result must satisfy, using only the public [`Schedule`] API — it shares
//! no bookkeeping with the engine in [`crate::list`], so the property-based
//! tests can cross-check the two implementations against each other.

use crate::schedule::{FluidDelivery, Schedule};
use mfb_model::prelude::*;
use std::fmt;

/// A violated schedule invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// An operation is bound to a component that cannot execute its kind.
    KindMismatch {
        /// The mis-bound operation.
        op: OpId,
        /// The component it was bound to.
        component: ComponentId,
    },
    /// Two operations overlap in time on the same component.
    ComponentOverlap {
        /// First operation.
        a: OpId,
        /// Second operation.
        b: OpId,
        /// The shared component.
        component: ComponentId,
    },
    /// A wash overlaps an operation on the same component.
    WashOverlap {
        /// The operation the wash collides with.
        op: OpId,
        /// The washed component.
        component: ComponentId,
    },
    /// A dependency's fluid is consumed before its producer finishes.
    PrecedenceViolation {
        /// Producing operation.
        parent: OpId,
        /// Consuming operation.
        child: OpId,
    },
    /// An in-place delivery between operations bound to different
    /// components.
    InPlaceAcrossComponents {
        /// Producing operation.
        parent: OpId,
        /// Consuming operation.
        child: OpId,
    },
    /// A transport task's timing is internally inconsistent
    /// (`arrive != depart + t_c`, or consumption before arrival, or
    /// departure before the producer finishes).
    TransportTiming {
        /// The offending task.
        task: TaskId,
    },
    /// A transport's endpoints disagree with the bindings of its fluid's
    /// producer and consumer.
    TransportEndpoints {
        /// The offending task.
        task: TaskId,
    },
    /// An edge of the sequencing graph has no delivery record.
    MissingDelivery {
        /// Producing operation.
        parent: OpId,
        /// Consuming operation.
        child: OpId,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::KindMismatch { op, component } => {
                write!(f, "{op} bound to incompatible component {component}")
            }
            ScheduleViolation::ComponentOverlap { a, b, component } => {
                write!(f, "{a} and {b} overlap on {component}")
            }
            ScheduleViolation::WashOverlap { op, component } => {
                write!(f, "wash on {component} overlaps {op}")
            }
            ScheduleViolation::PrecedenceViolation { parent, child } => {
                write!(f, "{child} consumes out({parent}) before it exists")
            }
            ScheduleViolation::InPlaceAcrossComponents { parent, child } => {
                write!(f, "in-place delivery {parent} -> {child} across components")
            }
            ScheduleViolation::TransportTiming { task } => {
                write!(f, "transport {task} has inconsistent timing")
            }
            ScheduleViolation::TransportEndpoints { task } => {
                write!(f, "transport {task} endpoints disagree with bindings")
            }
            ScheduleViolation::MissingDelivery { parent, child } => {
                write!(f, "edge {parent} -> {child} has no delivery record")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// Checks every schedule invariant; returns all violations found (empty =
/// valid).
pub fn validate(
    schedule: &Schedule,
    graph: &SequencingGraph,
    components: &ComponentSet,
) -> Vec<ScheduleViolation> {
    let mut violations = Vec::new();

    // Bindings execute on compatible components.
    for s in schedule.ops() {
        let kind = components.component(s.component).kind();
        if !kind.executes(graph.op(s.op).kind()) {
            violations.push(ScheduleViolation::KindMismatch {
                op: s.op,
                component: s.component,
            });
        }
    }

    // Component exclusivity: operations on the same component do not
    // overlap, and washes do not overlap operations.
    for c in components.ids() {
        let mut on_c: Vec<_> = schedule.ops().filter(|s| s.component == c).collect();
        on_c.sort_by_key(|s| s.start);
        for pair in on_c.windows(2) {
            if pair[0].interval().overlaps(pair[1].interval()) {
                violations.push(ScheduleViolation::ComponentOverlap {
                    a: pair[0].op,
                    b: pair[1].op,
                    component: c,
                });
            }
        }
        for w in schedule.washes().filter(|w| w.component == c) {
            for s in &on_c {
                if w.interval().overlaps(s.interval()) {
                    violations.push(ScheduleViolation::WashOverlap {
                        op: s.op,
                        component: c,
                    });
                }
            }
        }
    }

    // Deliveries: every edge accounted for, precedence respected.
    let mut delivered = 0usize;
    for &(parent, child, delivery) in schedule.deliveries() {
        delivered += 1;
        let p = schedule.op(parent);
        let ch = schedule.op(child);
        match delivery {
            FluidDelivery::InPlace => {
                if p.component != ch.component {
                    violations.push(ScheduleViolation::InPlaceAcrossComponents { parent, child });
                }
                if ch.start < p.end {
                    violations.push(ScheduleViolation::PrecedenceViolation { parent, child });
                }
            }
            FluidDelivery::Transported(task_id) => {
                let t = schedule.transport(task_id);
                if t.fluid != parent || t.consumer != child {
                    violations.push(ScheduleViolation::TransportEndpoints { task: task_id });
                    continue;
                }
                if t.src != p.component || t.dst != ch.component {
                    violations.push(ScheduleViolation::TransportEndpoints { task: task_id });
                }
                if t.depart < p.end
                    || t.arrive != t.depart + schedule.t_c
                    || t.consumed_at < t.arrive
                    || t.consumed_at != ch.start
                {
                    violations.push(ScheduleViolation::TransportTiming { task: task_id });
                }
                if ch.start < p.end {
                    violations.push(ScheduleViolation::PrecedenceViolation { parent, child });
                }
            }
        }
    }
    if delivered != graph.edge_count() {
        for (parent, child) in graph.edges() {
            if !schedule
                .deliveries()
                .any(|&(p, c, _)| p == parent && c == child)
            {
                violations.push(ScheduleViolation::MissingDelivery { parent, child });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{schedule, SchedulerConfig};
    use mfb_model::wash::LogLinearWash;

    fn d_wash(secs: f64) -> DiffusionCoefficient {
        LogLinearWash::paper_calibrated().coefficient_for(Duration::from_secs_f64(secs))
    }

    fn diamond() -> SequencingGraph {
        let mut b = SequencingGraph::builder();
        let a = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(4.0));
        let l = b.operation(OperationKind::Heat, Duration::from_secs(2), d_wash(1.0));
        let r = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(6.0));
        let z = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        b.edge(a, l).unwrap();
        b.edge(a, r).unwrap();
        b.edge(l, z).unwrap();
        b.edge(r, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn valid_schedules_pass() {
        let g = diamond();
        let comps = Allocation::new(2, 1, 0, 0).instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        for cfg in [
            SchedulerConfig::paper_dcsa(),
            SchedulerConfig::paper_baseline(),
        ] {
            let s = schedule(&g, &comps, &wash, &cfg).unwrap();
            let v = validate(&s, &g, &comps);
            assert!(v.is_empty(), "violations under {cfg:?}: {v:?}");
        }
    }

    /// Rebuilds a schedule from its public parts, applying `tamper` to the
    /// operation list first.
    fn forge(
        s: &Schedule,
        tamper: impl FnOnce(&mut Vec<crate::schedule::ScheduledOp>),
    ) -> Schedule {
        let mut ops: Vec<_> = s.ops().copied().collect();
        tamper(&mut ops);
        Schedule::new(
            s.t_c,
            ops,
            s.deliveries().copied().collect(),
            s.transports().copied().collect(),
            s.washes().copied().collect(),
        )
    }

    #[test]
    fn corrupted_timing_is_caught() {
        let g = diamond();
        let comps = Allocation::new(2, 1, 0, 0).instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        // Shift the sink operation to time zero: it now consumes fluids
        // that do not exist yet.
        let forged = forge(&s, |ops| {
            let dur = ops[3].end - ops[3].start;
            ops[3].start = Instant::ZERO;
            ops[3].end = Instant::ZERO + dur;
        });
        let v = validate(&forged, &g, &comps);
        assert!(!v.is_empty(), "tampered schedule must fail validation");
    }

    #[test]
    fn corrupted_binding_is_caught() {
        let g = diamond();
        let comps = Allocation::new(2, 1, 0, 0).instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        // Bind the heat operation (index 1) onto a mixer.
        let forged = forge(&s, |ops| ops[1].component = ComponentId::new(0));
        let v = validate(&forged, &g, &comps);
        assert!(
            v.iter()
                .any(|x| matches!(x, ScheduleViolation::KindMismatch { .. })),
            "kind mismatch not caught: {v:?}"
        );
    }
}
