//! Schedule quality metrics: completion time, the paper's resource
//! utilization `U_r` (Eq. (1)), cache time and wash time.

use crate::schedule::Schedule;
use mfb_model::prelude::*;

/// Per-component utilization figures backing [`resource_utilization`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentUsage {
    /// The component.
    pub component: ComponentId,
    /// `T_a`: summed execution time of operations bound to the component.
    pub busy: Duration,
    /// `T_le - T_fs`: the window from the first operation's start to the
    /// last operation's end. Zero for unused components.
    pub window: Duration,
}

impl ComponentUsage {
    /// `T_a / (T_le - T_fs)`, or 0 for an unused component.
    pub fn utilization(&self) -> f64 {
        if self.window.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / self.window.as_secs_f64()
        }
    }
}

/// Per-component usage breakdown for `schedule` over `components`.
pub fn component_usage(schedule: &Schedule, components: &ComponentSet) -> Vec<ComponentUsage> {
    let mut busy = vec![Duration::ZERO; components.len()];
    let mut first: Vec<Option<Instant>> = vec![None; components.len()];
    let mut last: Vec<Option<Instant>> = vec![None; components.len()];
    for s in schedule.ops() {
        let i = s.component.index();
        busy[i] += s.end - s.start;
        first[i] = Some(first[i].map_or(s.start, |f| f.min(s.start)));
        last[i] = Some(last[i].map_or(s.end, |l| l.max(s.end)));
    }
    components
        .ids()
        .map(|c| {
            let i = c.index();
            let window = match (first[i], last[i]) {
                (Some(f), Some(l)) => l - f,
                _ => Duration::ZERO,
            };
            ComponentUsage {
                component: c,
                busy: busy[i],
                window,
            }
        })
        .collect()
}

/// The paper's on-chip resource utilization, Eq. (1):
///
/// `U_r = (1/|C|) · Σ_i  T_a(i) / (T_le(i) - T_fs(i))`
///
/// averaged over **all** allocated components; a component that never runs
/// an operation contributes zero (it was allocated but wasted).
pub fn resource_utilization(schedule: &Schedule, components: &ComponentSet) -> f64 {
    let usages = component_usage(schedule, components);
    if usages.is_empty() {
        return 0.0;
    }
    usages.iter().map(ComponentUsage::utilization).sum::<f64>() / usages.len() as f64
}

/// Summary of a schedule: the scheduling-stage metrics of Table I, Fig. 8
/// and Fig. 9 that do not depend on the physical layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleMetrics {
    /// Assay completion time.
    pub completion: Duration,
    /// Resource utilization `U_r` in `[0, 1]`.
    pub utilization: f64,
    /// Total time fluids spend cached in channels (Fig. 8).
    pub cache_time: Duration,
    /// Total component wash time booked by the scheduler.
    pub component_wash_time: Duration,
    /// Number of transports (routing workload).
    pub transports: usize,
    /// Number of dependencies satisfied in place (Case-I wins).
    pub in_place: usize,
}

impl ScheduleMetrics {
    /// Computes all scheduling-stage metrics.
    pub fn of(schedule: &Schedule, components: &ComponentSet) -> Self {
        ScheduleMetrics {
            completion: schedule.completion_time() - Instant::ZERO,
            utilization: resource_utilization(schedule, components),
            cache_time: schedule.total_cache_time(),
            component_wash_time: schedule.total_component_wash_time(),
            transports: schedule.transports().len(),
            in_place: schedule.in_place_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{schedule, SchedulerConfig};

    fn d_wash(secs: f64) -> DiffusionCoefficient {
        LogLinearWash::paper_calibrated().coefficient_for(Duration::from_secs_f64(secs))
    }

    #[test]
    fn utilization_of_fully_busy_component_is_one() {
        // Two back-to-back in-place mixes on one mixer: busy == window.
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(2.0));
        b.edge(o0, o1).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        let u = resource_utilization(&s, &comps);
        assert!((u - 1.0).abs() < 1e-12, "got {u}");
    }

    #[test]
    fn unused_component_drags_average_down() {
        let mut b = SequencingGraph::builder();
        b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        let u = resource_utilization(&s, &comps);
        assert!((u - 0.5).abs() < 1e-12, "one busy + one idle mixer: {u}");
        let usages = component_usage(&s, &comps);
        assert_eq!(usages.len(), 2);
        assert_eq!(usages[1].busy, Duration::ZERO);
        assert_eq!(usages[1].utilization(), 0.0);
    }

    #[test]
    fn gaps_reduce_utilization() {
        // Independent o0, o1 on one mixer with a 6 s wash between them:
        // busy 8 s over a 14 s window.
        let mut b = SequencingGraph::builder();
        b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(2.0));
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &comps,
            &LogLinearWash::paper_calibrated(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        let m = ScheduleMetrics::of(&s, &comps);
        assert_eq!(m.completion, Duration::from_secs(14));
        assert!((m.utilization - 8.0 / 14.0).abs() < 1e-12);
        assert_eq!(m.transports, 0);
        assert_eq!(m.in_place, 0);
    }
}
