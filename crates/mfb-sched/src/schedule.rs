//! The output of resource binding and scheduling: who runs where and when,
//! which fluids move, and which residues get washed.

use mfb_model::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scheduled operation: its binding and its time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// The operation.
    pub op: OpId,
    /// The component it executes on (`Φ(o)` in the paper).
    pub component: ComponentId,
    /// Execution start `t_start(o)`.
    pub start: Instant,
    /// Execution end `t_end(o) = t_start(o) + t_o`.
    pub end: Instant,
}

impl ScheduledOp {
    /// The execution interval `[start, end)`.
    #[inline]
    pub fn interval(&self) -> Interval {
        Interval::new(self.start, self.end)
    }
}

/// How an input fluid reaches its consuming operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FluidDelivery {
    /// The fluid stays in the component that produced it and is consumed in
    /// place (the paper's Case-I benefit: no transport, no wash).
    InPlace,
    /// The fluid moves through flow channels; see the matching
    /// [`TransportTask`].
    Transported(TaskId),
}

/// One fluid movement between two components through flow channels,
/// including the channel-storage dwell the paper calls *caching*.
///
/// The fluid departs its source at `depart` (the moment its producer
/// finishes), arrives after the constant transport time `t_c`, and then
/// waits *in the channel* until its consumer starts — the distributed
/// channel storage of DCSA. `cache_time` is that wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportTask {
    /// Task identifier (dense, in creation order).
    pub id: TaskId,
    /// The operation whose output fluid is moved.
    pub fluid: OpId,
    /// The operation that consumes the fluid.
    pub consumer: OpId,
    /// Source component (where `fluid` was produced).
    pub src: ComponentId,
    /// Destination component (where `consumer` executes).
    pub dst: ComponentId,
    /// When the fluid leaves `src`.
    pub depart: Instant,
    /// When the fluid reaches `dst`'s ports (`depart + t_c`).
    pub arrive: Instant,
    /// When the consumer starts and the fluid finally leaves the channel.
    pub consumed_at: Instant,
}

impl TransportTask {
    /// Time the fluid spends cached in channels after arrival.
    #[inline]
    pub fn cache_time(&self) -> Duration {
        self.consumed_at - self.arrive
    }

    /// Full channel occupancy window `[depart, consumed_at)`: transport plus
    /// cache, the interval the paper inserts into every routed cell's
    /// time-slot set.
    #[inline]
    pub fn occupancy(&self) -> Interval {
        Interval::new(self.depart, self.consumed_at)
    }

    /// `true` when this task is in flight or cached at the same time as
    /// `other` — the paper's *parallel tasks* `Pr_j`, which must not share
    /// channel cells.
    #[inline]
    pub fn parallel_with(&self, other: &TransportTask) -> bool {
        self.occupancy().overlaps(other.occupancy())
    }
}

impl fmt::Display for TransportTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: out({}) {}->{} {} (cache {})",
            self.id,
            self.fluid,
            self.src,
            self.dst,
            self.occupancy(),
            self.cache_time()
        )
    }
}

/// One component wash: flushing the residue of `residue` out of `component`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WashEvent {
    /// The component being washed.
    pub component: ComponentId,
    /// The operation whose output fluid left the residue.
    pub residue: OpId,
    /// Wash start (the moment the fluid departed).
    pub start: Instant,
    /// Wash end; the component is reusable from here.
    pub end: Instant,
}

impl WashEvent {
    /// The wash interval `[start, end)`.
    #[inline]
    pub fn interval(&self) -> Interval {
        Interval::new(self.start, self.end)
    }

    /// Duration of the wash.
    #[inline]
    pub fn wash_time(&self) -> Duration {
        self.end - self.start
    }
}

/// A complete binding-and-scheduling result for one bioassay.
///
/// Produced by the scheduler in [`crate::list`] (both binding rules);
/// consumed by placement (connection priorities), routing (transport tasks)
/// and the metrics in [`crate::metrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// The constant transport time `t_c` the schedule was built with.
    pub t_c: Duration,
    /// Scheduled operations, indexed by `OpId`.
    ops: Vec<ScheduledOp>,
    /// How each edge of the sequencing graph delivers its fluid, in the
    /// graph's edge order.
    deliveries: Vec<(OpId, OpId, FluidDelivery)>,
    /// All transport tasks, indexed by `TaskId`.
    transports: Vec<TransportTask>,
    /// All component washes, in creation order.
    washes: Vec<WashEvent>,
}

impl Schedule {
    /// Assembles a schedule from raw parts. **No invariants are checked** —
    /// the vectors are taken at face value (`ops` indexed by `OpId`,
    /// `transports` by `TaskId`). Intended for deserialization, testing and
    /// failure injection; run [`crate::validate::validate`] on anything not
    /// produced by [`crate::list::schedule`].
    pub fn new(
        t_c: Duration,
        ops: Vec<ScheduledOp>,
        deliveries: Vec<(OpId, OpId, FluidDelivery)>,
        transports: Vec<TransportTask>,
        washes: Vec<WashEvent>,
    ) -> Self {
        Schedule {
            t_c,
            ops,
            deliveries,
            transports,
            washes,
        }
    }

    /// The scheduled form of operation `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` does not belong to the scheduled assay.
    #[inline]
    pub fn op(&self, op: OpId) -> &ScheduledOp {
        &self.ops[op.index()]
    }

    /// All scheduled operations, in `OpId` order.
    #[inline]
    pub fn ops(&self) -> impl ExactSizeIterator<Item = &ScheduledOp> {
        self.ops.iter()
    }

    /// The component each operation is bound to (`Φ`).
    #[inline]
    pub fn binding(&self, op: OpId) -> ComponentId {
        self.ops[op.index()].component
    }

    /// How each fluidic dependency is delivered, `(parent, child, delivery)`.
    #[inline]
    pub fn deliveries(&self) -> impl ExactSizeIterator<Item = &(OpId, OpId, FluidDelivery)> {
        self.deliveries.iter()
    }

    /// All transport tasks, in `TaskId` order.
    #[inline]
    pub fn transports(&self) -> impl ExactSizeIterator<Item = &TransportTask> {
        self.transports.iter()
    }

    /// The transport task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn transport(&self, id: TaskId) -> &TransportTask {
        &self.transports[id.index()]
    }

    /// All component wash events.
    #[inline]
    pub fn washes(&self) -> impl ExactSizeIterator<Item = &WashEvent> {
        self.washes.iter()
    }

    /// Assay completion time: the end of the last operation.
    pub fn completion_time(&self) -> Instant {
        self.ops
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(Instant::ZERO)
    }

    /// Number of dependencies satisfied in place (no transport, no wash) —
    /// the paper's Case-I wins.
    pub fn in_place_count(&self) -> usize {
        self.deliveries
            .iter()
            .filter(|(_, _, d)| matches!(d, FluidDelivery::InPlace))
            .count()
    }

    /// Total channel cache time across all transports (the paper's Fig. 8
    /// metric).
    pub fn total_cache_time(&self) -> Duration {
        self.transports.iter().map(TransportTask::cache_time).sum()
    }

    /// Total component wash time across all wash events.
    pub fn total_component_wash_time(&self) -> Duration {
        self.washes.iter().map(WashEvent::wash_time).sum()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule({} ops, {} transports, {} washes, completes {})",
            self.ops.len(),
            self.transports.len(),
            self.washes.len(),
            self.completion_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Instant {
        Instant::from_secs(s)
    }

    fn sample_transport() -> TransportTask {
        TransportTask {
            id: TaskId::new(0),
            fluid: OpId::new(0),
            consumer: OpId::new(1),
            src: ComponentId::new(0),
            dst: ComponentId::new(1),
            depart: t(5),
            arrive: t(7),
            consumed_at: t(10),
        }
    }

    #[test]
    fn transport_cache_and_occupancy() {
        let tk = sample_transport();
        assert_eq!(tk.cache_time(), Duration::from_secs(3));
        assert_eq!(tk.occupancy(), Interval::new(t(5), t(10)));
    }

    #[test]
    fn parallel_detection() {
        let a = sample_transport();
        let mut b = sample_transport();
        b.depart = t(9);
        b.arrive = t(11);
        b.consumed_at = t(12);
        assert!(a.parallel_with(&b));
        b.depart = t(10);
        b.arrive = t(12);
        b.consumed_at = t(13);
        assert!(!a.parallel_with(&b), "touching windows are not parallel");
    }

    #[test]
    fn schedule_aggregates() {
        let ops = vec![
            ScheduledOp {
                op: OpId::new(0),
                component: ComponentId::new(0),
                start: t(0),
                end: t(5),
            },
            ScheduledOp {
                op: OpId::new(1),
                component: ComponentId::new(1),
                start: t(10),
                end: t(14),
            },
        ];
        let tk = sample_transport();
        let wash = WashEvent {
            component: ComponentId::new(0),
            residue: OpId::new(0),
            start: t(5),
            end: t(7),
        };
        let s = Schedule::new(
            Duration::from_secs(2),
            ops,
            vec![(
                OpId::new(0),
                OpId::new(1),
                FluidDelivery::Transported(tk.id),
            )],
            vec![tk],
            vec![wash],
        );
        assert_eq!(s.completion_time(), t(14));
        assert_eq!(s.total_cache_time(), Duration::from_secs(3));
        assert_eq!(s.total_component_wash_time(), Duration::from_secs(2));
        assert_eq!(s.in_place_count(), 0);
        assert_eq!(s.binding(OpId::new(1)), ComponentId::new(1));
        assert_eq!(s.transport(TaskId::new(0)).fluid, OpId::new(0));
        assert!(s.to_string().contains("2 ops"));
    }

    #[test]
    fn wash_event_interval() {
        let w = WashEvent {
            component: ComponentId::new(0),
            residue: OpId::new(3),
            start: t(1),
            end: t(4),
        };
        assert_eq!(w.wash_time(), Duration::from_secs(3));
        assert_eq!(w.interval().length(), Duration::from_secs(3));
    }
}
