//! Classic scheduling analyses: ASAP/ALAP times, mobility, and parallelism
//! profiles.
//!
//! These are the standard high-level-synthesis diagnostics (De Micheli,
//! ch. 5 — the paper's reference \[11\]) adapted to the DCSA cost model:
//! edges cost the constant transport time `t_c`, and resource limits are
//! ignored (the analyses bound what *any* binding could achieve).
//!
//! Uses:
//!
//! * **mobility** (`ALAP − ASAP`) identifies the operations that determine
//!   the makespan — zero-mobility operations form the critical path(s);
//! * the **parallelism profile** upper-bounds how many components of each
//!   kind could ever be busy at once, a principled allocation guide;
//! * ASAP times lower-bound any scheduler's start times, which the test
//!   suite uses to sanity-check Algorithm 1.

use mfb_model::prelude::*;

/// Per-operation timing bounds at a fixed `t_c`, ignoring resource limits.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAnalysis {
    /// The `t_c` the analysis was computed with.
    pub t_c: Duration,
    /// Earliest possible start per op (`OpId`-indexed).
    pub asap: Vec<Instant>,
    /// Latest start per op that still meets the critical-path makespan.
    pub alap: Vec<Instant>,
    /// The unconstrained makespan (critical path length).
    pub makespan: Duration,
}

impl TimingAnalysis {
    /// Computes ASAP/ALAP bounds for `graph` with transport cost `t_c`.
    pub fn of(graph: &SequencingGraph, t_c: Duration) -> TimingAnalysis {
        let n = graph.len();
        let mut asap = vec![Instant::ZERO; n];
        for &o in graph.topological_order() {
            let ready = graph
                .parents(o)
                .iter()
                .map(|&p| asap[p.index()] + graph.op(p).duration() + t_c)
                .max()
                .unwrap_or(Instant::ZERO);
            asap[o.index()] = ready;
        }
        let makespan = graph
            .op_ids()
            .map(|o| (asap[o.index()] + graph.op(o).duration()) - Instant::ZERO)
            .max()
            .unwrap_or(Duration::ZERO);

        let deadline = Instant::ZERO + makespan;
        let mut alap = vec![deadline; n];
        for &o in graph.topological_order().iter().rev() {
            let latest_end = graph
                .children(o)
                .iter()
                .map(|&c| alap[c.index()] - t_c)
                .min()
                .unwrap_or(deadline);
            alap[o.index()] = latest_end - graph.op(o).duration();
        }

        TimingAnalysis {
            t_c,
            asap,
            alap,
            makespan,
        }
    }

    /// Mobility (slack) of operation `op`: how far its start can slide
    /// without stretching the critical path. Zero for critical operations.
    pub fn mobility(&self, op: OpId) -> Duration {
        self.alap[op.index()] - self.asap[op.index()]
    }

    /// Operations with zero mobility — the critical path(s).
    pub fn critical_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.asap.len() as u32)
            .map(OpId::new)
            .filter(|&o| self.mobility(o).is_zero())
    }
}

/// How many operations of each kind could run simultaneously under the
/// ASAP schedule — an upper bound on useful allocation, per kind
/// (`(Mix, Heat, Filter, Detect)` order).
pub fn parallelism_profile(graph: &SequencingGraph, t_c: Duration) -> [u32; 4] {
    let timing = TimingAnalysis::of(graph, t_c);
    let mut peaks = [0u32; 4];
    // Sweep over ASAP execution intervals per kind.
    for (kind_idx, peak_slot) in peaks.iter_mut().enumerate() {
        let intervals = graph
            .op_ids()
            .filter(|&o| graph.op(o).kind() as usize == kind_idx)
            .map(|o| {
                let start = timing.asap[o.index()];
                Interval::new(start, start + graph.op(o).duration())
            });
        *peak_slot = peak_overlap(intervals) as u32;
    }
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{schedule, SchedulerConfig};

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::PROTEIN
    }

    fn t_c() -> Duration {
        Duration::from_secs(2)
    }

    fn diamond() -> SequencingGraph {
        let mut b = SequencingGraph::builder();
        let a = b.operation(OperationKind::Mix, Duration::from_secs(4), d());
        let slow = b.operation(OperationKind::Heat, Duration::from_secs(6), d());
        let fast = b.operation(OperationKind::Filter, Duration::from_secs(2), d());
        let z = b.operation(OperationKind::Mix, Duration::from_secs(4), d());
        b.edge(a, slow).unwrap();
        b.edge(a, fast).unwrap();
        b.edge(slow, z).unwrap();
        b.edge(fast, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn asap_alap_bracket_on_diamond() {
        let g = diamond();
        let t = TimingAnalysis::of(&g, t_c());
        // a: [0], slow: [6], fast: [6], z: [14]; makespan 18.
        assert_eq!(t.asap[0], Instant::ZERO);
        assert_eq!(t.asap[1], Instant::from_secs(6));
        assert_eq!(t.asap[2], Instant::from_secs(6));
        assert_eq!(t.asap[3], Instant::from_secs(14));
        assert_eq!(t.makespan, Duration::from_secs(18));
        // The fast branch has 4 s of slack; everything else is critical.
        assert_eq!(t.mobility(OpId::new(0)), Duration::ZERO);
        assert_eq!(t.mobility(OpId::new(1)), Duration::ZERO);
        assert_eq!(t.mobility(OpId::new(2)), Duration::from_secs(4));
        assert_eq!(t.mobility(OpId::new(3)), Duration::ZERO);
        let crit: Vec<_> = t.critical_ops().collect();
        assert_eq!(crit, vec![OpId::new(0), OpId::new(1), OpId::new(3)]);
    }

    #[test]
    fn asap_matches_critical_path_helper() {
        let g = diamond();
        let t = TimingAnalysis::of(&g, t_c());
        assert_eq!(t.makespan, g.critical_path(t_c()));
    }

    #[test]
    fn alap_never_precedes_asap() {
        let g = mfb_bench_suite_stub();
        let t = TimingAnalysis::of(&g, t_c());
        for o in g.op_ids() {
            assert!(t.alap[o.index()] >= t.asap[o.index()], "{o}");
        }
    }

    /// A slightly larger hand-rolled DAG (bench-suite is not a dependency
    /// of this crate's unit tests).
    fn mfb_bench_suite_stub() -> SequencingGraph {
        let mut b = SequencingGraph::builder();
        let ops: Vec<OpId> = (0..10)
            .map(|i| b.operation(OperationKind::Mix, Duration::from_secs(2 + i % 4), d()))
            .collect();
        for i in 0..9 {
            if i % 3 != 2 {
                b.edge(ops[i], ops[i + 1]).unwrap();
            }
        }
        b.edge(ops[0], ops[5]).unwrap();
        b.edge(ops[2], ops[7]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn scheduler_respects_asap_lower_bounds() {
        let g = mfb_bench_suite_stub();
        let comps = Allocation::new(3, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let wash = LogLinearWash::paper_calibrated();
        let s = schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let t = TimingAnalysis::of(&g, t_c());
        for o in g.op_ids() {
            // In-place deliveries skip t_c, so the true bound is the ASAP
            // time computed WITHOUT transport costs.
            let zero_tc = TimingAnalysis::of(&g, Duration::ZERO);
            assert!(
                s.op(o).start >= zero_tc.asap[o.index()],
                "{o}: scheduled before its zero-t_c ASAP"
            );
            let _ = &t;
        }
    }

    #[test]
    fn parallelism_profile_counts_kinds_separately() {
        let g = diamond();
        let p = parallelism_profile(&g, t_c());
        // The two mixes never overlap (a before z); heat and filter are
        // alone in their kinds.
        assert_eq!(p, [1, 1, 1, 0]);
    }

    #[test]
    fn wide_fan_has_high_parallelism() {
        let mut b = SequencingGraph::builder();
        let root = b.operation(OperationKind::Mix, Duration::from_secs(2), d());
        for _ in 0..5 {
            let c = b.operation(OperationKind::Heat, Duration::from_secs(3), d());
            b.edge(root, c).unwrap();
        }
        let g = b.build().unwrap();
        let p = parallelism_profile(&g, t_c());
        assert_eq!(p[1], 5, "all five heats can run simultaneously");
    }
}
