//! Exact (branch-and-bound) binding and scheduling for small assays.
//!
//! The paper's Algorithm 1 is a greedy heuristic. For assays of up to a
//! dozen operations, the optimal makespan is computable by exhaustive
//! search over (operation order × component choice), with the same
//! execution semantics as the list scheduler: resident fluids, Case-I
//! in-place consumption, eviction washes, constant transport time.
//!
//! Two uses:
//!
//! * **quality measurement** — how far from optimal is Algorithm 1 on
//!   small instances (exercised by this module's tests and the property
//!   suite);
//! * **semantics cross-check** — this is a second, independent
//!   implementation of the timing rules; if the two disagree on what a
//!   binding implies, a test fails.

use crate::error::SchedError;
use mfb_model::prelude::*;

/// Hard cap on the operation count accepted by [`optimal_makespan`]; the
/// search is factorial and anything larger is a programming error.
pub const MAX_EXACT_OPS: usize = 12;

/// Search state: which fluid sits in each component and when operations
/// finished.
#[derive(Debug, Clone)]
struct State {
    /// Per component: the resident fluid and its production end.
    resident: Vec<Option<(OpId, Instant)>>,
    /// Per op: end time (None = unscheduled).
    end: Vec<Option<Instant>>,
    /// Number of scheduled ops.
    done: usize,
    /// Latest end time so far.
    makespan: Instant,
}

/// Computes the optimal makespan of `graph` on `components` under the
/// workspace's execution semantics, by branch-and-bound.
///
/// # Errors
///
/// [`SchedError::NoComponentForKind`] when some operation kind has no
/// component.
///
/// # Panics
///
/// Panics if the assay has more than [`MAX_EXACT_OPS`] operations.
pub fn optimal_makespan(
    graph: &SequencingGraph,
    components: &ComponentSet,
    wash: &dyn WashModel,
    t_c: Duration,
) -> Result<Duration, SchedError> {
    assert!(
        graph.len() <= MAX_EXACT_OPS,
        "exact search is limited to {MAX_EXACT_OPS} operations, got {}",
        graph.len()
    );
    for op in graph.ops() {
        let kind = ComponentKind::for_operation(op.kind());
        if components.of_kind(kind).next().is_none() {
            return Err(SchedError::NoComponentForKind { op: op.id(), kind });
        }
    }

    // Remaining-work lower bound per op: longest path to the sink
    // (excluding transports, which Case I can eliminate).
    let tail = graph.priority_values(Duration::ZERO);

    let mut best = Duration::from_ticks(u64::MAX);
    let mut state = State {
        resident: vec![None; components.len()],
        end: vec![None; graph.len()],
        done: 0,
        makespan: Instant::ZERO,
    };
    search(graph, components, wash, t_c, &tail, &mut state, &mut best);
    Ok(best)
}

fn search(
    graph: &SequencingGraph,
    components: &ComponentSet,
    wash: &dyn WashModel,
    t_c: Duration,
    tail: &[Duration],
    state: &mut State,
    best: &mut Duration,
) {
    if state.done == graph.len() {
        let span = state.makespan - Instant::ZERO;
        if span < *best {
            *best = span;
        }
        return;
    }

    for op in graph.op_ids() {
        if state.end[op.index()].is_some() {
            continue;
        }
        if !graph
            .parents(op)
            .iter()
            .all(|p| state.end[p.index()].is_some())
        {
            continue; // not ready
        }
        let kind = ComponentKind::for_operation(graph.op(op).kind());
        for c in components.of_kind(kind) {
            let (start, end) = simulate_binding(graph, wash, t_c, state, op, c);
            // Bound: this op's completion plus its successors' remaining
            // work cannot beat the incumbent.
            let bound = (end + (tail[op.index()] - graph.op(op).duration())).max(state.makespan);
            if bound - Instant::ZERO >= *best {
                continue;
            }
            // Apply.
            let saved_resident = state.resident[c.index()];
            let saved_makespan = state.makespan;
            state.resident[c.index()] = Some((op, end));
            state.end[op.index()] = Some(end);
            state.done += 1;
            state.makespan = state.makespan.max(end);

            search(graph, components, wash, t_c, tail, state, best);

            // Undo.
            state.resident[c.index()] = saved_resident;
            state.end[op.index()] = None;
            state.done -= 1;
            state.makespan = saved_makespan;
            let _ = start;
        }
    }
}

/// The timing rules, restated independently of `crate::list`:
/// returns (start, end) of `op` if bound to `c` in `state`.
fn simulate_binding(
    graph: &SequencingGraph,
    wash: &dyn WashModel,
    t_c: Duration,
    state: &State,
    op: OpId,
    c: ComponentId,
) -> (Instant, Instant) {
    let resident = state.resident[c.index()];
    let in_place = match resident {
        Some((fluid, _)) if graph.parents(op).contains(&fluid) => Some(fluid),
        _ => None,
    };
    let comp_ready = match resident {
        Some((fluid, since)) => {
            if in_place == Some(fluid) {
                since
            } else {
                since + wash.wash_time(graph.op(fluid).output_diffusion())
            }
        }
        None => Instant::ZERO,
    };
    let mut inputs = Instant::ZERO;
    for &p in graph.parents(op) {
        let pe = state.end[p.index()].expect("parents scheduled");
        let avail = if in_place == Some(p) { pe } else { pe + t_c };
        inputs = inputs.max(avail);
    }
    let start = comp_ready.max(inputs);
    (start, start + graph.op(op).duration())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{schedule, SchedulerConfig};

    fn wash() -> LogLinearWash {
        LogLinearWash::paper_calibrated()
    }

    fn d_wash(secs: f64) -> DiffusionCoefficient {
        wash().coefficient_for(Duration::from_secs_f64(secs))
    }

    fn t_c() -> Duration {
        Duration::from_secs(2)
    }

    #[test]
    fn single_op_is_its_duration() {
        let mut b = SequencingGraph::builder();
        b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let opt = optimal_makespan(&g, &comps, &wash(), t_c()).unwrap();
        assert_eq!(opt, Duration::from_secs(5));
    }

    #[test]
    fn chain_exploits_case1() {
        // mix -> mix on one mixer: optimal chains in place, no t_c.
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        b.edge(o0, o1).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let opt = optimal_makespan(&g, &comps, &wash(), t_c()).unwrap();
        assert_eq!(opt, Duration::from_secs(9));
    }

    #[test]
    fn heuristic_matches_optimal_on_paper_style_fork() {
        // Two parents, one child: the child should reuse the
        // hardest-to-wash parent's mixer.
        let mut b = SequencingGraph::builder();
        let easy = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let hard = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(8.0));
        let child = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(2.0));
        b.edge(easy, child).unwrap();
        b.edge(hard, child).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 0, 0, 0).instantiate(&ComponentLibrary::default());

        let opt = optimal_makespan(&g, &comps, &wash(), t_c()).unwrap();
        let heur = schedule(&g, &comps, &wash(), &SchedulerConfig::paper_dcsa())
            .unwrap()
            .completion_time()
            - Instant::ZERO;
        assert_eq!(heur, opt, "heuristic should be optimal here");
        assert_eq!(opt, Duration::from_secs(10)); // 5 + t_c .. merge at 7..10
    }

    #[test]
    fn heuristic_never_beats_optimal() {
        // Random small assays: list scheduling >= optimal, always.
        use mfb_model::prelude::OperationKind::*;
        let kinds = [Mix, Mix, Heat, Mix, Detect, Mix, Heat];
        for seed in 0..12u64 {
            let mut b = SequencingGraph::builder();
            let n = 4 + (seed as usize % 4);
            let ids: Vec<OpId> = (0..n)
                .map(|i| {
                    b.operation(
                        kinds[(i + seed as usize) % kinds.len()],
                        Duration::from_secs(2 + ((i as u64 + seed) % 4)),
                        d_wash(0.2 + ((seed + i as u64) % 5) as f64 * 2.0),
                    )
                })
                .collect();
            // Sparse forward edges.
            for i in 0..n {
                for j in (i + 1)..n {
                    if (seed + (i * 31 + j * 17) as u64) % 3 == 0 {
                        let _ = b.edge(ids[i], ids[j]);
                    }
                }
            }
            let g = b.build().unwrap();
            let comps = Allocation::new(2, 1, 0, 1).instantiate(&ComponentLibrary::default());
            let opt = optimal_makespan(&g, &comps, &wash(), t_c()).unwrap();
            let heur = schedule(&g, &comps, &wash(), &SchedulerConfig::paper_dcsa())
                .unwrap()
                .completion_time()
                - Instant::ZERO;
            assert!(
                heur >= opt,
                "seed {seed}: heuristic {heur} beat 'optimal' {opt} — semantics bug"
            );
            assert!(
                heur.as_secs_f64() <= opt.as_secs_f64() * 1.5 + 4.0,
                "seed {seed}: heuristic {heur} too far from optimal {opt}"
            );
        }
    }

    #[test]
    fn baseline_is_at_least_as_far_from_optimal() {
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        let o2 = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(2.0));
        b.chain(&[o0, o1, o2]).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let opt = optimal_makespan(&g, &comps, &wash(), t_c()).unwrap();
        let ours = schedule(&g, &comps, &wash(), &SchedulerConfig::paper_dcsa())
            .unwrap()
            .completion_time()
            - Instant::ZERO;
        let ba = schedule(&g, &comps, &wash(), &SchedulerConfig::paper_baseline())
            .unwrap()
            .completion_time()
            - Instant::ZERO;
        assert_eq!(ours, opt, "chains are Case-I's best case");
        assert!(ba >= ours);
    }

    #[test]
    #[should_panic(expected = "exact search is limited")]
    fn rejects_large_graphs() {
        let mut b = SequencingGraph::builder();
        for _ in 0..(MAX_EXACT_OPS + 1) {
            b.operation(OperationKind::Mix, Duration::from_secs(1), d_wash(1.0));
        }
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let _ = optimal_makespan(&g, &comps, &wash(), t_c());
    }

    #[test]
    fn missing_kind_errors() {
        let mut b = SequencingGraph::builder();
        b.operation(OperationKind::Filter, Duration::from_secs(1), d_wash(1.0));
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        assert!(optimal_makespan(&g, &comps, &wash(), t_c()).is_err());
    }
}
