//! The shared priority-driven list-scheduling engine (paper Algorithm 1).
//!
//! Both the paper's storage-aware scheduler and the baseline differ *only*
//! in how they pick a component for the operation at the head of the ready
//! queue; everything else — priority computation, ready-queue management,
//! transport/caching bookkeeping, wash accounting — is shared here so the
//! Table-I comparison measures the binding rule, not incidental engineering.
//!
//! ## Execution semantics
//!
//! * Operations are processed in non-increasing priority order (priority =
//!   longest path to the sink, edges costing `t_c`), restricted to *ready*
//!   operations (all parents already scheduled).
//! * An output fluid stays *resident* in the component that produced it
//!   until one of:
//!   1. a child operation is bound to the same component and consumes it in
//!      place — no transport, no wash (the paper's Case-I benefit);
//!   2. the component is needed for another operation — the fluid is evicted
//!      into channel storage at its production end and the component is
//!      washed for `wash(residue)` starting at that moment.
//! * Every dependency not consumed in place becomes a [`TransportTask`]:
//!   the fluid departs at its producer's end, arrives `t_c` later, and is
//!   *cached in the channel* until its consumer starts.

use crate::error::SchedError;
use crate::schedule::{FluidDelivery, Schedule, ScheduledOp, TransportTask, WashEvent};
use mfb_model::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How the scheduler picks a component for the operation being scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum BindingRule {
    /// The paper's Algorithm 1. **Case I**: if some same-kind parent's output
    /// fluid is still resident in its component, bind there — preferring the
    /// parent fluid with the *lowest* diffusion coefficient (the most
    /// expensive residue to wash, so reusing it saves the most). **Case II**
    /// otherwise: the qualified component with the earliest estimated ready
    /// time.
    StorageAware,
    /// The paper's baseline BA: always the qualified component with the
    /// earliest estimated ready time (`t_ready(c) = t_remove + wash`,
    /// Eq. (2)), with no storage-reuse preference.
    EarliestReady,
    /// Ablation: Case I fires but picks an arbitrary qualified parent (the
    /// one with the smallest id) instead of the hardest-to-wash fluid.
    /// Isolates the value of the diffusion-aware preference inside Case I.
    StorageAwareUnordered,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// The constant inter-component transport time `t_c` (paper default 2 s).
    pub t_c: Duration,
    /// The binding rule to apply.
    pub rule: BindingRule,
}

impl SchedulerConfig {
    /// The paper's configuration for its own algorithm: `t_c = 2 s`,
    /// storage-aware binding.
    pub fn paper_dcsa() -> Self {
        SchedulerConfig {
            t_c: Duration::from_secs(2),
            rule: BindingRule::StorageAware,
        }
    }

    /// The paper's baseline configuration: `t_c = 2 s`, earliest-ready
    /// binding.
    pub fn paper_baseline() -> Self {
        SchedulerConfig {
            t_c: Duration::from_secs(2),
            rule: BindingRule::EarliestReady,
        }
    }
}

/// Runs binding and scheduling on `graph` over the component set
/// `components`, with wash times given by `wash`.
///
/// # Errors
///
/// Returns [`SchedError::NoComponentForKind`] if the assay contains an
/// operation kind with no allocated component.
pub fn schedule(
    graph: &SequencingGraph,
    components: &ComponentSet,
    wash: &dyn WashModel,
    config: &SchedulerConfig,
) -> Result<Schedule, SchedError> {
    schedule_with_defects(graph, components, wash, config, &DefectMap::pristine())
}

/// [`schedule`] on a damaged chip: components marked dead in `defects` are
/// excluded from binding entirely — Case II never selects them and Case I
/// cannot reach them (operations are only ever bound to live components, so
/// no resident fluid can sit in a dead one).
///
/// # Errors
///
/// [`SchedError::NoComponentForKind`] if an operation kind has no allocated
/// component at all, [`SchedError::AllComponentsDead`] if components of the
/// kind exist but the defect map kills every one.
pub fn schedule_with_defects(
    graph: &SequencingGraph,
    components: &ComponentSet,
    wash: &dyn WashModel,
    config: &SchedulerConfig,
    defects: &DefectMap,
) -> Result<Schedule, SchedError> {
    let _span = mfb_obs::obs_span!(
        "sched.list",
        ops = graph.ops().count() as u64,
        components = components.iter().count() as u64,
    );
    for op in graph.ops() {
        let kind = ComponentKind::for_operation(op.kind());
        let allocated = components.of_kind(kind).count();
        if allocated == 0 {
            return Err(SchedError::NoComponentForKind { op: op.id(), kind });
        }
        if components.of_kind(kind).all(|c| defects.is_dead(c)) {
            return Err(SchedError::AllComponentsDead {
                op: op.id(),
                kind,
                allocated,
            });
        }
    }
    Ok(Engine::new(graph, components, wash, config, defects).run())
}

/// A fluid sitting inside the component that produced it.
#[derive(Debug, Clone, Copy)]
struct Resident {
    /// The producing operation.
    fluid: OpId,
    /// When production ended (and so the earliest the fluid can leave).
    since: Instant,
}

#[derive(Debug, Clone, Copy)]
struct CompState {
    resident: Option<Resident>,
}

/// Ready-queue entry ordered by (priority desc, op id asc).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueueEntry {
    priority: Duration,
    op: OpId,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.op.cmp(&self.op))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Engine<'a> {
    graph: &'a SequencingGraph,
    components: &'a ComponentSet,
    wash: &'a dyn WashModel,
    config: &'a SchedulerConfig,
    defects: &'a DefectMap,
    state: Vec<CompState>,
    scheduled: Vec<Option<ScheduledOp>>,
    unscheduled_parents: Vec<usize>,
    queue: BinaryHeap<QueueEntry>,
    priorities: Vec<Duration>,
    transports: Vec<TransportTask>,
    washes: Vec<WashEvent>,
    in_place: Vec<Option<OpId>>, // per op: the parent it consumed in place
}

impl<'a> Engine<'a> {
    fn new(
        graph: &'a SequencingGraph,
        components: &'a ComponentSet,
        wash: &'a dyn WashModel,
        config: &'a SchedulerConfig,
        defects: &'a DefectMap,
    ) -> Self {
        let priorities = graph.priority_values(config.t_c);
        let unscheduled_parents: Vec<usize> =
            graph.op_ids().map(|o| graph.parents(o).len()).collect();
        let mut queue = BinaryHeap::new();
        for o in graph.op_ids() {
            if unscheduled_parents[o.index()] == 0 {
                queue.push(QueueEntry {
                    priority: priorities[o.index()],
                    op: o,
                });
            }
        }
        Engine {
            graph,
            components,
            wash,
            config,
            defects,
            state: vec![CompState { resident: None }; components.len()],
            scheduled: vec![None; graph.len()],
            unscheduled_parents,
            queue,
            priorities,
            transports: Vec::new(),
            washes: Vec::new(),
            in_place: vec![None; graph.len()],
        }
    }

    fn run(mut self) -> Schedule {
        while let Some(QueueEntry { op, .. }) = self.queue.pop() {
            self.schedule_op(op);
            for &child in self.graph.children(op) {
                let slot = &mut self.unscheduled_parents[child.index()];
                *slot -= 1;
                if *slot == 0 {
                    self.queue.push(QueueEntry {
                        priority: self.priorities[child.index()],
                        op: child,
                    });
                }
            }
        }
        self.apply_jit_departures();

        let deliveries = self
            .graph
            .edges()
            .map(|(p, c)| {
                let delivery = if self.in_place[c.index()] == Some(p) {
                    FluidDelivery::InPlace
                } else {
                    let task = self
                        .transports
                        .iter()
                        .find(|t| t.fluid == p && t.consumer == c)
                        .expect("every non-in-place edge has a transport");
                    FluidDelivery::Transported(task.id)
                };
                (p, c, delivery)
            })
            .collect();

        Schedule::new(
            self.config.t_c,
            self.scheduled
                .into_iter()
                .map(|s| s.expect("all operations scheduled"))
                .collect(),
            deliveries,
            self.transports,
            self.washes,
        )
    }

    /// The "transport or store?" refinement (after Liu et al., DAC'17):
    /// during scheduling every fluid nominally departs the moment its
    /// producer finishes, which is correct but pessimistic — it floods the
    /// channels with simultaneously cached plugs. This pass retimes each
    /// transport to leave **as late as possible**: just in time for its
    /// consumer (`consumed_at - t_c`), unless the source component is
    /// needed earlier, in which case the fluid leaves early enough for the
    /// component wash to finish before the next operation starts. Component
    /// wash events are retimed to begin when the last aliquot actually
    /// leaves. Start/end times of operations are unchanged, so the
    /// schedule's makespan and utilization are unaffected; only channel
    /// pressure (and hence Fig. 8 cache time) drops.
    fn apply_jit_departures(&mut self) {
        // Per-component operation timelines, ordered by start.
        let mut timeline: Vec<Vec<(Instant, OpId)>> = vec![Vec::new(); self.components.len()];
        for s in self.scheduled.iter().flatten() {
            timeline[s.component.index()].push((s.start, s.op));
        }
        for t in &mut timeline {
            t.sort_unstable();
        }

        for p in self.graph.op_ids() {
            let Some(sch) = self.scheduled[p.index()] else {
                continue;
            };
            let e = sch.end;
            let c = sch.component;
            // The first operation on c starting at or after e, if any.
            let next = timeline[c.index()]
                .iter()
                .find(|&&(start, o)| start >= e && o != p)
                .copied();
            let deadline = next.map(|(s_next, o_next)| {
                if self.in_place[o_next.index()] == Some(p) {
                    s_next
                } else {
                    s_next - self.wash.wash_time(self.graph.op(p).output_diffusion())
                }
            });

            let mut last_depart: Option<Instant> = None;
            for t in self.transports.iter_mut().filter(|t| t.fluid == p) {
                let jit = t.consumed_at - self.config.t_c;
                let mut depart = jit;
                if let Some(d) = deadline {
                    depart = depart.min(d);
                }
                depart = depart.max(e);
                t.depart = depart;
                t.arrive = depart + self.config.t_c;
                last_depart = Some(last_depart.map_or(depart, |l| l.max(depart)));
            }
            // Retime the eviction wash to start when the last aliquot
            // actually leaves the component.
            if let Some(last) = last_depart {
                for w in self
                    .washes
                    .iter_mut()
                    .filter(|w| w.component == c && w.residue == p)
                {
                    let dur = w.end - w.start;
                    w.start = last.max(w.start);
                    w.end = w.start + dur;
                }
            }
        }
    }

    /// The end time of a scheduled operation.
    fn end_of(&self, op: OpId) -> Instant {
        self.scheduled[op.index()]
            .as_ref()
            .expect("parents are scheduled before children")
            .end
    }

    /// Estimated ready time of component `c` per the paper's Eq. (2):
    /// `t_remove + wash(residue)` if a fluid is resident, else the component
    /// is immediately available (it is clean: washes are booked the moment a
    /// residue's fluid leaves).
    fn ready_estimate(&self, c: ComponentId) -> Instant {
        match self.state[c.index()].resident {
            Some(Resident { fluid, since }) => {
                since + self.wash.wash_time(self.graph.op(fluid).output_diffusion())
            }
            None => Instant::ZERO,
        }
    }

    /// The paper's Case-I candidate set `O_s'`: parents of `op` of the same
    /// kind whose output fluid is still resident in the component it was
    /// produced on.
    fn case1_candidates(&self, op: OpId) -> Vec<OpId> {
        let kind = self.graph.op(op).kind();
        self.graph
            .parents(op)
            .iter()
            .copied()
            .filter(|&p| self.graph.op(p).kind() == kind)
            .filter(|&p| {
                let c = self.scheduled[p.index()]
                    .as_ref()
                    .expect("parent scheduled")
                    .component;
                matches!(self.state[c.index()].resident, Some(r) if r.fluid == p)
            })
            .collect()
    }

    /// Picks the component for `op` according to the configured rule.
    fn select_component(&self, op: OpId) -> ComponentId {
        let rule = self.config.rule;
        if matches!(
            rule,
            BindingRule::StorageAware | BindingRule::StorageAwareUnordered
        ) {
            let mut candidates = self.case1_candidates(op);
            if !candidates.is_empty() {
                // Case I: reuse a parent's component.
                let chosen = match rule {
                    BindingRule::StorageAware => {
                        // Lowest diffusion coefficient (hardest residue to
                        // wash); ties broken by op id for determinism.
                        candidates.sort_by_key(|&p| (self.graph.op(p).output_diffusion(), p));
                        candidates[0]
                    }
                    _ => *candidates.iter().min().expect("non-empty"),
                };
                return self.scheduled[chosen.index()]
                    .as_ref()
                    .expect("parent scheduled")
                    .component;
            }
        }
        // Case II / baseline: earliest estimated ready time among *live*
        // components, ties by id.
        let kind = ComponentKind::for_operation(self.graph.op(op).kind());
        self.components
            .of_kind(kind)
            .filter(|&c| !self.defects.is_dead(c))
            .min_by_key(|&c| (self.ready_estimate(c), c))
            .expect("live component availability checked before scheduling")
    }

    fn schedule_op(&mut self, op: OpId) {
        let component = self.select_component(op);
        let op_info = self.graph.op(op);

        // Does the chosen component hold one of our input fluids?
        let in_place_parent = match self.state[component.index()].resident {
            Some(Resident { fluid, .. }) if self.graph.parents(op).contains(&fluid) => Some(fluid),
            _ => None,
        };

        // Component availability: in-place reuse skips the wash entirely;
        // any other resident fluid is evicted into channel storage at its
        // production end and the component washed from that moment.
        let comp_ready = match self.state[component.index()].resident {
            Some(Resident { fluid, since }) => {
                if in_place_parent == Some(fluid) {
                    since
                } else {
                    let wash_time = self.wash.wash_time(self.graph.op(fluid).output_diffusion());
                    self.washes.push(WashEvent {
                        component,
                        residue: fluid,
                        start: since,
                        end: since + wash_time,
                    });
                    since + wash_time
                }
            }
            None => Instant::ZERO,
        };

        // Input availability: transported fluids arrive t_c after their
        // producer finishes; the in-place fluid is available at production.
        let mut inputs_ready = Instant::ZERO;
        for &p in self.graph.parents(op) {
            let avail = if in_place_parent == Some(p) {
                self.end_of(p)
            } else {
                self.end_of(p) + self.config.t_c
            };
            inputs_ready = inputs_ready.max(avail);
        }

        let start = comp_ready.max(inputs_ready);
        let end = start + op_info.duration();

        // Book transports (and their channel-cache dwell) for every
        // non-in-place dependency.
        for &p in self.graph.parents(op) {
            if in_place_parent == Some(p) {
                continue;
            }
            let src = self.scheduled[p.index()]
                .as_ref()
                .expect("parent scheduled")
                .component;
            let depart = self.end_of(p);
            self.transports.push(TransportTask {
                id: TaskId::new(self.transports.len() as u32),
                fluid: p,
                consumer: op,
                src,
                dst: component,
                depart,
                arrive: depart + self.config.t_c,
                consumed_at: start,
            });
        }

        self.in_place[op.index()] = in_place_parent;
        self.scheduled[op.index()] = Some(ScheduledOp {
            op,
            component,
            start,
            end,
        });
        self.state[component.index()].resident = Some(Resident {
            fluid: op,
            since: end,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wash_model() -> LogLinearWash {
        LogLinearWash::paper_calibrated()
    }

    /// d such that wash time is exactly `secs`.
    fn d_wash(secs: f64) -> DiffusionCoefficient {
        wash_model().coefficient_for(Duration::from_secs_f64(secs))
    }

    fn two_mixers() -> ComponentSet {
        Allocation::new(2, 0, 0, 0).instantiate(&ComponentLibrary::default())
    }

    #[test]
    fn single_op_starts_immediately() {
        let mut b = SequencingGraph::builder();
        let o = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let g = b.build().unwrap();
        let s = schedule(
            &g,
            &two_mixers(),
            &wash_model(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        assert_eq!(s.op(o).start, Instant::ZERO);
        assert_eq!(s.op(o).end, Instant::from_secs(5));
        assert_eq!(s.completion_time(), Instant::from_secs(5));
        assert!(s.transports().len() == 0);
    }

    #[test]
    fn chain_same_kind_uses_case1_in_place() {
        // o0 -> o1, both mixes: storage-aware binding keeps o1 on o0's
        // mixer, skipping transport and wash entirely.
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        b.edge(o0, o1).unwrap();
        let g = b.build().unwrap();

        let s = schedule(
            &g,
            &two_mixers(),
            &wash_model(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        assert_eq!(s.binding(o0), s.binding(o1));
        assert_eq!(s.op(o1).start, Instant::from_secs(5)); // no t_c, no wash
        assert_eq!(s.in_place_count(), 1);
        assert_eq!(s.transports().len(), 0);
        assert_eq!(s.total_component_wash_time(), Duration::ZERO);
    }

    #[test]
    fn baseline_spreads_and_pays_transport() {
        // Same chain under BA: o1 goes to the fresh mixer (ready at 0)
        // and pays t_c for the transport.
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        b.edge(o0, o1).unwrap();
        let g = b.build().unwrap();

        let s = schedule(
            &g,
            &two_mixers(),
            &wash_model(),
            &SchedulerConfig::paper_baseline(),
        )
        .unwrap();
        assert_ne!(s.binding(o0), s.binding(o1));
        assert_eq!(s.op(o1).start, Instant::from_secs(7)); // 5 + t_c
        assert_eq!(s.transports().len(), 1);
        let t = s.transports().next().unwrap();
        assert_eq!(t.depart, Instant::from_secs(5));
        assert_eq!(t.arrive, Instant::from_secs(7));
        assert_eq!(t.cache_time(), Duration::ZERO);
    }

    #[test]
    fn case1_prefers_lowest_diffusion_parent() {
        // Two mix parents on different mixers; the storage-aware rule binds
        // the child onto the parent whose residue is hardest to wash.
        let mut b = SequencingGraph::builder();
        let easy = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let hard = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(8.0));
        let child = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(2.0));
        b.edge(easy, child).unwrap();
        b.edge(hard, child).unwrap();
        let g = b.build().unwrap();

        let s = schedule(
            &g,
            &two_mixers(),
            &wash_model(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        assert_eq!(s.binding(child), s.binding(hard));
        // The easy parent's fluid is transported and the hard one consumed
        // in place: only the easy mixer is washed (2 s), not the hard one.
        assert_eq!(s.transports().len(), 1);
        assert_eq!(s.in_place_count(), 1);
    }

    #[test]
    fn eviction_washes_and_delays() {
        // One mixer only: o0 and o1 are independent mixes; o1 must evict
        // o0's output (cached to channel) and wait out the wash.
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        let g = b.build().unwrap();
        let one_mixer = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());

        let s = schedule(
            &g,
            &one_mixer,
            &wash_model(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        // Priorities equal; tie-break schedules o0 first.
        assert_eq!(s.op(o0).start, Instant::ZERO);
        assert_eq!(s.op(o1).start, Instant::from_secs(11)); // 5 + 6 s wash
        assert_eq!(s.washes().len(), 1);
        let w = s.washes().next().unwrap();
        assert_eq!(w.residue, o0);
        assert_eq!(w.wash_time(), Duration::from_secs(6));
        let _ = o1;
    }

    #[test]
    fn higher_priority_scheduled_first() {
        // Two independent chains; the longer chain's head has higher
        // priority and grabs the single mixer first.
        let mut b = SequencingGraph::builder();
        let long_head = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(0.2));
        let long_mid = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(0.2));
        let long_tail = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(0.2));
        let short = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(0.2));
        b.chain(&[long_head, long_mid, long_tail]).unwrap();
        let g = b.build().unwrap();
        let one_mixer = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(
            &g,
            &one_mixer,
            &wash_model(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        assert!(s.op(long_head).start < s.op(short).start);
    }

    #[test]
    fn unordered_case1_still_reuses_a_parent_component() {
        // Two same-kind parents, both resident: the unordered rule picks
        // the smaller op id instead of the hardest-to-wash fluid.
        let mut b = SequencingGraph::builder();
        let easy = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let hard = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(8.0));
        let child = b.operation(OperationKind::Mix, Duration::from_secs(3), d_wash(2.0));
        b.edge(easy, child).unwrap();
        b.edge(hard, child).unwrap();
        let g = b.build().unwrap();
        let cfg = SchedulerConfig {
            t_c: Duration::from_secs(2),
            rule: BindingRule::StorageAwareUnordered,
        };
        let s = schedule(&g, &two_mixers(), &wash_model(), &cfg).unwrap();
        assert_eq!(
            s.binding(child),
            s.binding(easy),
            "unordered rule picks the lower-id parent"
        );
        assert_eq!(s.in_place_count(), 1);
        // Contrast: the full rule prefers the hard-wash parent.
        let full = schedule(
            &g,
            &two_mixers(),
            &wash_model(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap();
        assert_eq!(full.binding(child), full.binding(hard));
    }

    #[test]
    fn jit_departures_reduce_cache_without_moving_ops() {
        // A fluid consumed late: its transport departs just in time, not at
        // production end.
        let mut b = SequencingGraph::builder();
        let src = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        // A long heat delays the consumer's other input.
        let slow = b.operation(OperationKind::Heat, Duration::from_secs(20), d_wash(1.0));
        let sink = b.operation(OperationKind::Detect, Duration::from_secs(3), d_wash(1.0));
        b.edge(src, sink).unwrap();
        b.edge(slow, sink).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 1, 0, 1).instantiate(&ComponentLibrary::default());
        let s = schedule(&g, &comps, &wash_model(), &SchedulerConfig::paper_dcsa()).unwrap();
        // sink starts at 22 (slow ends 20 + t_c); src's fluid departs at 20
        // (just in time), not at 5 — the mixer is never needed again.
        let t = s
            .transports()
            .find(|t| t.fluid == src)
            .expect("src fluid is transported");
        assert_eq!(s.op(sink).start, Instant::from_secs(22));
        assert_eq!(t.depart, Instant::from_secs(20));
        assert_eq!(t.cache_time(), Duration::ZERO);
    }

    #[test]
    fn forced_early_departure_caches_in_channel() {
        // Same shape, but the mixer is needed again right away: the fluid
        // must leave early and cache.
        let mut b = SequencingGraph::builder();
        let src = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        // A short second mix grabs the only mixer right after src,
        // evicting src's fluid into channel storage.
        let hog = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        let slow = b.operation(OperationKind::Heat, Duration::from_secs(20), d_wash(1.0));
        let sink = b.operation(OperationKind::Detect, Duration::from_secs(3), d_wash(1.0));
        b.edge(src, sink).unwrap();
        b.edge(slow, sink).unwrap();
        let _ = hog;
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 1, 0, 1).instantiate(&ComponentLibrary::default());
        let s = schedule(&g, &comps, &wash_model(), &SchedulerConfig::paper_dcsa()).unwrap();
        let t = s
            .transports()
            .find(|t| t.fluid == src)
            .expect("src fluid is transported");
        // The eviction forces departure at src's end (5 s), far before the
        // just-in-time instant (20 s), so the fluid caches in channels.
        assert!(
            t.depart < Instant::from_secs(20),
            "depart {} too late",
            t.depart
        );
        assert!(t.cache_time() > Duration::ZERO);
    }

    #[test]
    fn missing_component_kind_is_an_error() {
        let mut b = SequencingGraph::builder();
        b.operation(OperationKind::Heat, Duration::from_secs(2), d_wash(1.0));
        let g = b.build().unwrap();
        let err = schedule(
            &g,
            &two_mixers(),
            &wash_model(),
            &SchedulerConfig::paper_dcsa(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::NoComponentForKind { .. }));
        assert!(err.to_string().contains("heater"));
    }

    #[test]
    fn dead_component_is_never_bound() {
        // Two independent mixes on two mixers; killing mixer 0 forces both
        // onto mixer 1 (serialised with an eviction wash).
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        let g = b.build().unwrap();
        let comps = two_mixers();
        let mut defects = DefectMap::pristine();
        defects.kill_component(ComponentId::new(0));
        let s = schedule_with_defects(
            &g,
            &comps,
            &wash_model(),
            &SchedulerConfig::paper_dcsa(),
            &defects,
        )
        .unwrap();
        assert_eq!(s.binding(o0), ComponentId::new(1));
        assert_eq!(s.binding(o1), ComponentId::new(1));
    }

    #[test]
    fn all_dead_components_of_kind_is_an_error() {
        let mut b = SequencingGraph::builder();
        let o = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let g = b.build().unwrap();
        let comps = two_mixers();
        let mut defects = DefectMap::pristine();
        defects
            .kill_component(ComponentId::new(0))
            .kill_component(ComponentId::new(1));
        let err = schedule_with_defects(
            &g,
            &comps,
            &wash_model(),
            &SchedulerConfig::paper_dcsa(),
            &defects,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SchedError::AllComponentsDead {
                op: o,
                kind: ComponentKind::Mixer,
                allocated: 2,
            }
        );
    }

    #[test]
    fn pristine_defects_match_plain_schedule() {
        let mut b = SequencingGraph::builder();
        let o0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(6.0));
        let o1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        b.edge(o0, o1).unwrap();
        let g = b.build().unwrap();
        let cfg = SchedulerConfig::paper_dcsa();
        let plain = schedule(&g, &two_mixers(), &wash_model(), &cfg).unwrap();
        let with = schedule_with_defects(
            &g,
            &two_mixers(),
            &wash_model(),
            &cfg,
            &DefectMap::pristine(),
        )
        .unwrap();
        assert_eq!(plain, with);
    }

    #[test]
    fn transports_cache_until_consumption() {
        // Mix -> heat -> mix diamond: the heat output must wait for the
        // second mixer if it is busy.
        let mut b = SequencingGraph::builder();
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d_wash(2.0));
        let h = b.operation(OperationKind::Heat, Duration::from_secs(2), d_wash(0.2));
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d_wash(2.0));
        b.edge(m0, h).unwrap();
        b.edge(m0, m1).unwrap();
        b.edge(h, m1).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(1, 1, 0, 0).instantiate(&ComponentLibrary::default());
        let s = schedule(&g, &comps, &wash_model(), &SchedulerConfig::paper_dcsa()).unwrap();
        // m1 consumes m0's fluid in place but must wait for the heat
        // output: start = end(h) + t_c = (5+2+2) + 2 = 11.
        assert_eq!(s.binding(m1), s.binding(m0));
        assert_eq!(s.op(h).start, Instant::from_secs(7));
        assert_eq!(s.op(m1).start, Instant::from_secs(11));
        // The heat output never waits (cache 0); all deliveries accounted.
        assert_eq!(s.total_cache_time(), Duration::ZERO);
        assert_eq!(s.deliveries().len(), 3);
    }
}
