//! Mutation testing for the replay validator: random corruptions of a
//! valid solution must be detected (or be provably harmless).

use mfb_bench_suite::synth::SyntheticSpec;
use mfb_core::prelude::*;
use mfb_model::prelude::*;
use mfb_sim::prelude::*;
use proptest::prelude::*;

fn wash() -> LogLinearWash {
    LogLinearWash::paper_calibrated()
}

fn solved(seed: u64) -> (SequencingGraph, ComponentSet, Solution) {
    let g = SyntheticSpec::new(14, seed).generate();
    let comps = Allocation::new(2, 2, 2, 2).instantiate(&ComponentLibrary::default());
    let sol = Synthesizer::paper_dcsa()
        .synthesize(&g, &comps, &wash())
        .expect("synthesizes");
    (g, comps, sol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Baseline: the untouched solution always replays cleanly.
    #[test]
    fn untouched_solutions_are_valid(seed in any::<u64>()) {
        let (g, comps, sol) = solved(seed);
        let report = replay(&g, &comps, &sol.schedule, &sol.placement, &sol.routing, &wash());
        prop_assert!(report.is_valid(), "{:?}", report.violations);
    }

    /// Teleporting any path cell to a far corner breaks contiguity or
    /// endpoint rules.
    #[test]
    fn teleported_cells_are_detected(
        seed in any::<u64>(),
        victim in any::<proptest::sample::Index>(),
    ) {
        let (g, comps, mut sol) = solved(seed);
        prop_assume!(!sol.routing.paths.is_empty());
        let pi = victim.index(sol.routing.paths.len());
        prop_assume!(!sol.routing.paths[pi].cells.is_empty());
        let grid = sol.placement.grid();
        let far = CellPos::new(grid.width - 1, grid.height - 1);
        let ci = victim.index(sol.routing.paths[pi].cells.len());
        prop_assume!(sol.routing.paths[pi].cells[ci].manhattan(far) > 2);
        sol.routing.paths[pi].cells[ci] = far;
        let report = replay(&g, &comps, &sol.schedule, &sol.placement, &sol.routing, &wash());
        prop_assert!(!report.is_valid(), "teleport went unnoticed");
    }

    /// Shifting a path's windows earlier than the producer's end violates
    /// the fluid's lifetime.
    #[test]
    fn premature_windows_are_detected(
        seed in any::<u64>(),
        victim in any::<proptest::sample::Index>(),
    ) {
        let (g, comps, mut sol) = solved(seed);
        let with_shiftable: Vec<usize> = sol
            .routing
            .paths
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                !p.windows.is_empty()
                    && p.windows[0].start > Instant::ZERO + Duration::from_secs(1)
            })
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!with_shiftable.is_empty());
        let pi = with_shiftable[victim.index(with_shiftable.len())];
        // Producer end bounds the earliest legal window start; jumping to
        // time zero always escapes it (sources end at > 0).
        for w in &mut sol.routing.paths[pi].windows {
            *w = Interval::new(Instant::ZERO, w.end);
        }
        let report = replay(&g, &comps, &sol.schedule, &sol.placement, &sol.routing, &wash());
        prop_assert!(!report.is_valid(), "premature occupancy went unnoticed");
    }

    /// Swapping the realized times of two operations on the same component
    /// produces overlaps or precedence violations.
    #[test]
    fn component_overlap_is_detected(seed in any::<u64>()) {
        let (g, comps, mut sol) = solved(seed);
        // Find a component running two operations.
        let mut per_comp: std::collections::BTreeMap<ComponentId, Vec<OpId>> =
            std::collections::BTreeMap::new();
        for o in g.op_ids() {
            per_comp.entry(sol.schedule.binding(o)).or_default().push(o);
        }
        let Some((_, ops)) = per_comp.into_iter().find(|(_, v)| v.len() >= 2) else {
            return Ok(()); // nothing to corrupt in this instance
        };
        // Force the second op to start inside the first's realized window.
        let (a, b) = (ops[0], ops[1]);
        let a_start = sol.routing.realized.start[a.index()];
        let b_len = sol.routing.realized.end[b.index()]
            - sol.routing.realized.start[b.index()];
        sol.routing.realized.start[b.index()] = a_start;
        sol.routing.realized.end[b.index()] = a_start + b_len;
        let report = replay(&g, &comps, &sol.schedule, &sol.placement, &sol.routing, &wash());
        prop_assert!(!report.is_valid(), "overlap went unnoticed");
    }
}
