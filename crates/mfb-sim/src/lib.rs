//! Independent replay validation for DCSA physical synthesis solutions.
//!
//! A complete solution — schedule, placement, routing — claims that a
//! bioassay can execute on the chip without transportation conflicts. This
//! crate *replays* that claim cell by cell and instant by instant, sharing
//! no code with the tools that produced the solution:
//!
//! * [`replay::replay`] rebuilds the chip's activity timeline and checks
//!   placement legality, path integrity, the three conflict classes of the
//!   paper's §II-C.2, fluid lifetimes and operation precedence;
//! * [`violation::SimViolation`] enumerates everything that can go wrong;
//! * [`stats::SimStats`] summarises chip activity (makespan, peak parallel
//!   transports, realized cache time, channel occupancy).
//!
//! Because the validator is independent, the workspace's property tests can
//! cross-check the whole synthesis flow against it: any schedule/placement/
//! routing bug that produces a physically impossible solution surfaces here.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod events;
pub mod fault;
pub mod replay;
pub mod stats;
pub mod violation;

/// One-stop import of the simulation API.
pub mod prelude {
    pub use crate::events::{event_log, render_event_log, ChipEvent};
    pub use crate::fault::{assess_faults, FaultEvent, FaultImpact, FaultKind};
    pub use crate::replay::{replay, validate_solution, SimReport};
    pub use crate::stats::SimStats;
    pub use crate::violation::SimViolation;
}
