//! Chip activity statistics gathered during replay.

use mfb_model::prelude::*;
use mfb_route::prelude::Routing;
use mfb_sched::prelude::Schedule;

/// Aggregate activity figures for a replayed solution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Realized assay makespan.
    pub makespan: Duration,
    /// Largest number of transports simultaneously on chip
    /// (by occupancy-window hull).
    pub peak_parallel_transports: usize,
    /// Total realized channel-cache time: per task, the gap between its
    /// arrival (departure + `t_c`) and its consumer's realized start.
    pub realized_cache_time: Duration,
    /// Cell-seconds of channel occupancy (sum of per-cell window lengths).
    pub channel_occupancy: Duration,
    /// Number of distinct cells ever used by fluids.
    pub used_cells: usize,
}

impl SimStats {
    pub(crate) fn collect(
        schedule: &Schedule,
        routing: &Routing,
        timeline: &[Vec<crate::replay::Occupancy>],
        _grid: GridSpec,
    ) -> SimStats {
        let makespan = routing.realized.completion() - Instant::ZERO;

        // Peak parallelism over the tasks' on-chip lifetimes.
        let peak = peak_overlap(
            routing
                .paths
                .iter()
                .filter(|p| !p.is_empty())
                .map(|p| p.window_hull()),
        );

        let cache = routing.total_realized_cache_time(schedule.t_c);

        let mut occupancy = Duration::ZERO;
        let mut used = 0usize;
        for cell in timeline {
            if !cell.is_empty() {
                used += 1;
            }
            for o in cell {
                occupancy += o.window.length();
            }
        }

        SimStats {
            makespan,
            peak_parallel_transports: peak,
            realized_cache_time: cache,
            channel_occupancy: occupancy,
            used_cells: used,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::replay::replay;
    use crate::replay::test_support::solved_instance;
    use mfb_model::prelude::*;

    #[test]
    fn stats_are_consistent_with_solution() {
        let (g, comps, s, p, r, wash) = solved_instance();
        let report = replay(&g, &comps, &s, &p, &r, &wash);
        let stats = &report.stats;
        assert_eq!(
            stats.makespan,
            s.completion_time() - Instant::ZERO,
            "DCSA routing adds no delay"
        );
        assert!(stats.peak_parallel_transports >= 1);
        assert_eq!(stats.used_cells, r.used_cells);
        assert!(stats.channel_occupancy > Duration::ZERO);
    }
}
