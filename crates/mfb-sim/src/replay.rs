//! The replay engine: rebuilds the chip's cell-level activity timeline from
//! a complete solution and checks every physical rule against it.

use crate::stats::SimStats;
use crate::violation::SimViolation;
use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_route::prelude::Routing;
use mfb_sched::prelude::{FluidDelivery, Schedule};

/// The outcome of replaying a solution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Everything that went wrong; empty means the solution is physically
    /// executable.
    pub violations: Vec<SimViolation>,
    /// Activity statistics gathered during the replay.
    pub stats: SimStats,
}

impl SimReport {
    /// `true` when the replay found no violations.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One cell-occupancy event on the replay timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Occupancy {
    pub(crate) task: TaskId,
    pub(crate) fluid: OpId,
    pub(crate) window: Interval,
}

/// Replays the complete solution `(schedule, placement, routing)` for
/// `graph` on `components` and checks, independently of how the solution
/// was produced:
///
/// * placement legality;
/// * path integrity (contiguity, endpoints on the right component
///   boundaries, no traversal of component interiors);
/// * the three transportation-conflict classes of §II-C.2, cell by cell;
/// * fluid lifetimes (channel occupancy between producer end and consumer
///   start, under the routing's *realized* times);
/// * operation precedence and component exclusivity under realized times.
///
/// The checks share no code with the schedulers or routers — this is the
/// cross-check that catches bugs in either.
pub fn replay(
    graph: &SequencingGraph,
    components: &ComponentSet,
    schedule: &Schedule,
    placement: &Placement,
    routing: &Routing,
    wash: &dyn WashModel,
) -> SimReport {
    let mut violations = Vec::new();

    // Dimensional sanity first: replaying an archived solution against the
    // wrong assay or chip must report cleanly, not panic on an index.
    let shape = |what: &'static str| SimViolation::ShapeMismatch { what };
    if schedule.ops().len() != graph.len() {
        violations.push(shape("operation count"));
    }
    if routing.realized.start.len() != graph.len() || routing.realized.end.len() != graph.len() {
        violations.push(shape("realized-time vector length"));
    }
    if placement.len() != components.len() {
        violations.push(shape("component count"));
    }
    if routing.paths.len() != schedule.transports().len() {
        violations.push(shape("transport count"));
    }
    if schedule
        .ops()
        .any(|s| s.op.index() >= graph.len() || s.component.index() >= components.len())
        || schedule
            .transports()
            .any(|t| t.fluid.index() >= graph.len() || t.consumer.index() >= graph.len())
        || schedule
            .deliveries()
            .any(|&(p, c, _)| p.index() >= graph.len() || c.index() >= graph.len())
    {
        violations.push(shape("id out of range"));
    }
    if !violations.is_empty() {
        return SimReport {
            violations,
            stats: SimStats {
                makespan: Duration::ZERO,
                peak_parallel_transports: 0,
                realized_cache_time: Duration::ZERO,
                channel_occupancy: Duration::ZERO,
                used_cells: 0,
            },
        };
    }

    if !placement.is_legal() {
        violations.push(SimViolation::IllegalPlacement);
    }

    check_paths(schedule, placement, routing, &mut violations);
    let timeline = build_timeline(routing, placement.grid());
    check_conflicts(&timeline, placement.grid(), graph, wash, &mut violations);
    check_lifetimes(schedule, routing, &mut violations);
    check_operations(graph, components, schedule, routing, &mut violations);

    let stats = SimStats::collect(schedule, routing, &timeline, placement.grid());
    SimReport { violations, stats }
}

/// Path integrity: every transport has a contiguous path from its source
/// component's boundary to its destination's, avoiding all interiors.
fn check_paths(
    schedule: &Schedule,
    placement: &Placement,
    routing: &Routing,
    violations: &mut Vec<SimViolation>,
) {
    for t in schedule.transports() {
        let Some(path) = routing.paths.get(t.id.index()) else {
            violations.push(SimViolation::MissingPath { task: t.id });
            continue;
        };
        if path.is_empty() || path.cells.len() != path.windows.len() {
            violations.push(SimViolation::MissingPath { task: t.id });
            continue;
        }
        for w in path.cells.windows(2) {
            // Remote parking splices two legs; a repeated cell (distance 0)
            // at the splice is physically a U-turn and acceptable.
            if w[0].manhattan(w[1]) > 1 {
                violations.push(SimViolation::PathDiscontiguous { task: t.id });
                break;
            }
        }
        let grid = placement.grid();
        for &cell in &path.cells {
            if !grid.contains(cell) {
                violations.push(SimViolation::PathDiscontiguous { task: t.id });
                break;
            }
            for (i, &rect) in placement.rects().iter().enumerate() {
                if rect.contains(cell) {
                    violations.push(SimViolation::PathThroughComponent {
                        task: t.id,
                        cell,
                        component: ComponentId::new(i as u32),
                    });
                }
            }
        }
        // Endpoints must be orthogonally adjacent to their component
        // (a diagonal corner cell is not a port connection).
        let touches = |c: ComponentId, cell: CellPos| {
            let rect = placement.rect(c);
            !rect.contains(cell)
                && cell
                    .neighbours(grid.width, grid.height)
                    .any(|nb| rect.contains(nb))
        };
        let first = path.cells[0];
        let last = *path.cells.last().expect("non-empty");
        if !touches(t.src, first) || !touches(t.dst, last) {
            violations.push(SimViolation::BadEndpoint { task: t.id });
        }
    }
}

/// Groups occupancies per cell, sorted by window start.
fn build_timeline(routing: &Routing, grid: GridSpec) -> Vec<Vec<Occupancy>> {
    let mut timeline: Vec<Vec<Occupancy>> = vec![Vec::new(); grid.cell_count() as usize];
    for path in &routing.paths {
        for (cell, window) in path.occupancies() {
            if grid.contains(cell) {
                timeline[grid.index(cell)].push(Occupancy {
                    task: path.task,
                    fluid: path.fluid,
                    window,
                });
            }
        }
    }
    for cell in &mut timeline {
        cell.sort_by_key(|o| (o.window.start, o.window.end, o.task));
        // A task may book a cell twice (remote parking legs); merge exact
        // duplicates to avoid self-reports.
        cell.dedup();
    }
    timeline
}

/// Conflict classes 1–3 on every cell.
fn check_conflicts(
    timeline: &[Vec<Occupancy>],
    grid: GridSpec,
    graph: &SequencingGraph,
    wash: &dyn WashModel,
    violations: &mut Vec<SimViolation>,
) {
    for (idx, occs) in timeline.iter().enumerate() {
        let cell = CellPos::new(idx as u32 % grid.width, idx as u32 / grid.width);
        for i in 0..occs.len() {
            for j in (i + 1)..occs.len() {
                let (a, b) = (&occs[i], &occs[j]);
                if a.fluid == b.fluid {
                    continue; // same fluid: splitting plug, no contamination
                }
                if a.window.overlaps(b.window) {
                    violations.push(SimViolation::CellConflict {
                        cell,
                        a: a.task,
                        b: b.task,
                    });
                } else {
                    // Ordered pair: the earlier residue must wash out
                    // before the later fluid arrives.
                    let (first, second) = if a.window.end <= b.window.start {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    // Only adjacent-in-time pairs matter, but checking all
                    // ordered pairs is sound: an intermediate occupancy
                    // implies an intermediate wash, which only relaxes the
                    // requirement. Restrict to consecutive pairs to avoid
                    // false positives.
                    if j == i + 1 {
                        let wash_time = wash.wash_time(graph.op(first.fluid).output_diffusion());
                        if first.window.end + wash_time > second.window.start {
                            violations.push(SimViolation::WashGap {
                                cell,
                                previous: first.task,
                                next: second.task,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Channel occupancies stay within each fluid's lifetime.
fn check_lifetimes(schedule: &Schedule, routing: &Routing, violations: &mut Vec<SimViolation>) {
    for t in schedule.transports() {
        let Some(path) = routing.paths.get(t.id.index()) else {
            continue;
        };
        if path.is_empty() {
            continue;
        }
        let hull = path.window_hull();
        let produced = routing.realized.end[t.fluid.index()];
        let consumed = routing.realized.start[t.consumer.index()];
        if hull.start < produced || hull.end > consumed {
            violations.push(SimViolation::WindowOutsideLifetime { task: t.id });
        }
    }
}

/// Precedence and component exclusivity under realized times.
fn check_operations(
    graph: &SequencingGraph,
    components: &ComponentSet,
    schedule: &Schedule,
    routing: &Routing,
    violations: &mut Vec<SimViolation>,
) {
    let start = &routing.realized.start;
    let end = &routing.realized.end;
    for &(parent, child, delivery) in schedule.deliveries() {
        let earliest = match delivery {
            FluidDelivery::InPlace => end[parent.index()],
            FluidDelivery::Transported(_) => end[parent.index()] + schedule.t_c,
        };
        if start[child.index()] < earliest {
            violations.push(SimViolation::PrecedenceViolation { parent, child });
        }
    }
    for c in components.ids() {
        let mut on_c: Vec<OpId> = graph
            .op_ids()
            .filter(|&o| schedule.binding(o) == c)
            .collect();
        on_c.sort_by_key(|&o| start[o.index()]);
        for pair in on_c.windows(2) {
            let a = Interval::new(start[pair[0].index()], end[pair[0].index()]);
            let b = Interval::new(start[pair[1].index()], end[pair[1].index()]);
            if a.overlaps(b) {
                violations.push(SimViolation::ComponentOverlap {
                    a: pair[0],
                    b: pair[1],
                    component: c,
                });
            }
        }
    }
}

/// Convenience alias used by tests and examples.
pub fn validate_solution(
    graph: &SequencingGraph,
    components: &ComponentSet,
    schedule: &Schedule,
    placement: &Placement,
    routing: &Routing,
    wash: &dyn WashModel,
) -> Vec<SimViolation> {
    replay(graph, components, schedule, placement, routing, wash).violations
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use mfb_place::prelude::*;
    use mfb_route::prelude::*;
    use mfb_sched::prelude::*;

    /// A small but non-trivial solved instance: two mix chains joining in a
    /// detect, solved end to end with the paper flow.
    pub fn solved_instance() -> (
        SequencingGraph,
        ComponentSet,
        Schedule,
        Placement,
        Routing,
        LogLinearWash,
    ) {
        let wash = LogLinearWash::paper_calibrated();
        let d = |s: f64| wash.coefficient_for(Duration::from_secs_f64(s));
        let mut b = SequencingGraph::builder();
        let m0 = b.operation(OperationKind::Mix, Duration::from_secs(5), d(6.0));
        let m1 = b.operation(OperationKind::Mix, Duration::from_secs(4), d(2.0));
        let m2 = b.operation(OperationKind::Mix, Duration::from_secs(4), d(3.0));
        let dt = b.operation(OperationKind::Detect, Duration::from_secs(4), d(0.2));
        b.edge(m0, m2).unwrap();
        b.edge(m1, m2).unwrap();
        b.edge(m2, dt).unwrap();
        let g = b.build().unwrap();
        let comps = Allocation::new(2, 0, 0, 1).instantiate(&ComponentLibrary::default());
        let s =
            mfb_sched::list::schedule(&g, &comps, &wash, &SchedulerConfig::paper_dcsa()).unwrap();
        let nets = NetList::build(&s, &g, &wash, 0.6, 0.4);
        let placement = place_sa_auto(&comps, &nets, &SaConfig::paper()).unwrap();
        let routing = route_dcsa(&s, &g, &placement, &wash, &RouterConfig::paper()).unwrap();
        (g, comps, s, placement, routing, wash)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::solved_instance;
    use super::*;

    #[test]
    fn valid_solution_replays_cleanly() {
        let (g, comps, s, p, r, wash) = solved_instance();
        let report = replay(&g, &comps, &s, &p, &r, &wash);
        assert!(report.is_valid(), "{:?}", report.violations);
        assert!(report.stats.makespan > Duration::ZERO);
    }

    #[test]
    fn detects_broken_path() {
        let (g, comps, s, p, mut r, wash) = solved_instance();
        // Teleport the middle of the first path.
        let path = &mut r.paths[0];
        if path.cells.len() >= 3 {
            let mid = path.cells.len() / 2;
            path.cells[mid] = CellPos::new(0, 0);
        } else {
            path.cells[0] = CellPos::new(0, 0);
        }
        let report = replay(&g, &comps, &s, &p, &r, &wash);
        assert!(!report.is_valid());
    }

    #[test]
    fn detects_missing_path() {
        let (g, comps, s, p, mut r, wash) = solved_instance();
        r.paths[0].cells.clear();
        r.paths[0].windows.clear();
        let report = replay(&g, &comps, &s, &p, &r, &wash);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, SimViolation::MissingPath { .. })));
    }

    #[test]
    fn detects_cell_conflict() {
        let (g, comps, s, p, mut r, wash) = solved_instance();
        // Force two different-fluid paths onto the same cell and time.
        let donor_cell = r.paths[0].cells[0];
        let donor_window = r.paths[0].windows[0];
        let victim = r
            .paths
            .iter()
            .position(|pp| pp.fluid != r.paths[0].fluid)
            .expect("instance has two fluids");
        r.paths[victim].cells.push(donor_cell);
        r.paths[victim].windows.push(donor_window);
        let report = replay(&g, &comps, &s, &p, &r, &wash);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                SimViolation::CellConflict { .. } | SimViolation::WashGap { .. }
            )),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn detects_lifetime_escape() {
        let (g, comps, s, p, mut r, wash) = solved_instance();
        // Stretch a window past the consumer's start.
        let w = r.paths[0].windows.last_mut().unwrap();
        *w = Interval::new(w.start, w.end + Duration::from_secs(1000));
        let report = replay(&g, &comps, &s, &p, &r, &wash);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, SimViolation::WindowOutsideLifetime { .. })));
    }

    #[test]
    fn detects_retimed_precedence_break() {
        let (g, comps, s, p, mut r, wash) = solved_instance();
        // Claim the sink op starts at time zero.
        let sink = g.sinks().next().unwrap();
        r.realized.start[sink.index()] = Instant::ZERO;
        r.realized.end[sink.index()] = Instant::from_secs(1);
        let report = replay(&g, &comps, &s, &p, &r, &wash);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, SimViolation::PrecedenceViolation { .. })));
    }

    #[test]
    fn wrong_benchmark_reports_shape_mismatch_instead_of_panicking() {
        let (_g, _comps, s, p, r, wash) = solved_instance();
        // A different, smaller assay and chip.
        let mut b = SequencingGraph::builder();
        let d = DiffusionCoefficient::PROTEIN;
        b.operation(OperationKind::Mix, Duration::from_secs(1), d);
        let other = b.build().unwrap();
        let other_comps = Allocation::new(1, 0, 0, 0).instantiate(&ComponentLibrary::default());
        let report = replay(&other, &other_comps, &s, &p, &r, &wash);
        assert!(!report.is_valid());
        assert!(report
            .violations
            .iter()
            .all(|v| matches!(v, SimViolation::ShapeMismatch { .. })));
    }

    #[test]
    fn detects_illegal_placement() {
        let (g, comps, s, mut p, r, wash) = solved_instance();
        let r0 = p.rect(ComponentId::new(0));
        p.set_rect(ComponentId::new(1), r0);
        let report = replay(&g, &comps, &s, &p, &r, &wash);
        assert!(report.violations.contains(&SimViolation::IllegalPlacement));
    }
}
