//! Mid-assay fault events and their impact on a committed solution.
//!
//! A solution synthesized against a defect map assumes the chip's damage is
//! known *before* the assay starts. This module answers the complementary
//! question: given a solution already executing, what breaks when a cell
//! clogs or a component dies **at tick `t`**? Everything scheduled to touch
//! the failed resource strictly after the fault is affected; work that
//! completed before the fault is not. A solution with no affected work
//! *survives* the fault without resynthesis — the quantity the
//! `mfb faults --sweep` Monte-Carlo reports as the survival rate.

use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_route::prelude::Routing;
use mfb_sched::prelude::Schedule;
use std::fmt;

/// What physically fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A grid cell becomes permanently unusable (clogged valve, burst
    /// channel membrane).
    CellBlocked(CellPos),
    /// A component stops functioning entirely.
    ComponentDead(ComponentId),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::CellBlocked(c) => write!(f, "cell {c} blocked"),
            FaultKind::ComponentDead(c) => write!(f, "component {c} dead"),
        }
    }
}

/// One mid-assay fault: `kind` happens at tick `at` and persists forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: Instant,
    /// What fails.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.at)
    }
}

/// The impact of one [`FaultEvent`] on a committed solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultImpact {
    /// The fault assessed.
    pub fault: FaultEvent,
    /// Transport tasks whose reserved channel occupancy touches the failed
    /// resource at or after the fault instant, in id order.
    pub affected_tasks: Vec<TaskId>,
    /// Operations bound to the failed resource (a dead component, or the
    /// component whose footprint covers a blocked cell) that have not yet
    /// finished when the fault strikes, in id order.
    pub affected_ops: Vec<OpId>,
}

impl FaultImpact {
    /// True when nothing still scheduled touches the failed resource: the
    /// assay completes as planned despite the fault.
    pub fn survives(&self) -> bool {
        self.affected_tasks.is_empty() && self.affected_ops.is_empty()
    }
}

/// Assesses each fault independently against a committed solution, using
/// the routing's **realized** windows (baseline postponements included).
///
/// Faults are assessed concurrently (bounded by `MFB_THREADS`); each
/// assessment is a pure function of one fault and the shared solution, and
/// impacts come back in input order, so the result is identical to the
/// serial scan.
pub fn assess_faults(
    schedule: &Schedule,
    placement: &Placement,
    routing: &Routing,
    faults: &[FaultEvent],
) -> Vec<FaultImpact> {
    mfb_model::par::par_map_ordered(faults.len(), |i| {
        assess_one(schedule, placement, routing, faults[i])
    })
}

fn assess_one(
    schedule: &Schedule,
    placement: &Placement,
    routing: &Routing,
    fault: FaultEvent,
) -> FaultImpact {
    let mut affected_tasks = Vec::new();
    let mut affected_ops = Vec::new();

    // A window `[start, end)` is hit when the fault strikes before it ends:
    // occupancy at or after `at` uses the failed resource.
    let hit = |w: Interval| w.end > fault.at;

    match fault.kind {
        FaultKind::CellBlocked(cell) => {
            for p in &routing.paths {
                if p.occupancies().any(|(c, w)| c == cell && hit(w)) {
                    affected_tasks.push(p.task);
                }
            }
            // A blocked cell under a component footprint takes the whole
            // component down for everything it has not yet finished.
            let dead_component = (0..placement.len() as u32)
                .map(ComponentId::new)
                .find(|&c| placement.rect(c).contains(cell));
            if let Some(dc) = dead_component {
                collect_component_work(
                    schedule,
                    routing,
                    dc,
                    fault.at,
                    &mut affected_ops,
                    &mut affected_tasks,
                );
            }
        }
        FaultKind::ComponentDead(c) => {
            collect_component_work(
                schedule,
                routing,
                c,
                fault.at,
                &mut affected_ops,
                &mut affected_tasks,
            );
        }
    }

    affected_tasks.sort_unstable();
    affected_tasks.dedup();
    affected_ops.sort_unstable();
    affected_ops.dedup();
    FaultImpact {
        fault,
        affected_tasks,
        affected_ops,
    }
}

/// Everything still touching component `c` at or after `at`: unfinished
/// operations bound to it, and transports that depart from or arrive at it.
fn collect_component_work(
    schedule: &Schedule,
    routing: &Routing,
    c: ComponentId,
    at: Instant,
    ops: &mut Vec<OpId>,
    tasks: &mut Vec<TaskId>,
) {
    for s in schedule.ops() {
        if s.component == c && routing.realized.end[s.op.index()] > at {
            ops.push(s.op);
        }
    }
    for t in schedule.transports() {
        if (t.src == c || t.dst == c) && routing.paths[t.id.index()].window_hull().end > at {
            tasks.push(t.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::test_support::solved_instance;

    #[test]
    fn fault_after_completion_is_survived() {
        let (_g, _comps, s, p, r, _w) = solved_instance();
        let after = r.completion() + Duration::from_secs(1);
        let impacts = assess_faults(
            &s,
            &p,
            &r,
            &[FaultEvent {
                at: after,
                kind: FaultKind::CellBlocked(r.paths[0].cells[0]),
            }],
        );
        assert!(impacts[0].survives());
    }

    #[test]
    fn blocking_an_active_path_cell_hits_its_task() {
        let (_g, _comps, s, p, r, _w) = solved_instance();
        let path = &r.paths[0];
        let cell = path.cells[path.cells.len() / 2];
        let impacts = assess_faults(
            &s,
            &p,
            &r,
            &[FaultEvent {
                at: Instant::ZERO,
                kind: FaultKind::CellBlocked(cell),
            }],
        );
        assert!(impacts[0].affected_tasks.contains(&path.task));
        assert!(!impacts[0].survives());
    }

    #[test]
    fn dead_component_hits_its_unfinished_ops_and_transports() {
        let (_g, _comps, s, p, r, _w) = solved_instance();
        let victim = s.ops().next().unwrap().component;
        let impacts = assess_faults(
            &s,
            &p,
            &r,
            &[FaultEvent {
                at: Instant::ZERO,
                kind: FaultKind::ComponentDead(victim),
            }],
        );
        let i = &impacts[0];
        assert!(!i.survives());
        assert!(i.affected_ops.iter().all(|&o| s.op(o).component == victim));
        assert!(!i.affected_ops.is_empty());
    }

    #[test]
    fn assessment_is_deterministic_and_sorted() {
        let (_g, _comps, s, p, r, _w) = solved_instance();
        let faults = [
            FaultEvent {
                at: Instant::ZERO,
                kind: FaultKind::ComponentDead(s.ops().next().unwrap().component),
            },
            FaultEvent {
                at: Instant::ZERO,
                kind: FaultKind::CellBlocked(r.paths[0].cells[0]),
            },
        ];
        let a = assess_faults(&s, &p, &r, &faults);
        let b = assess_faults(&s, &p, &r, &faults);
        assert_eq!(a, b);
        for i in &a {
            let mut sorted = i.affected_tasks.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, i.affected_tasks);
        }
    }
}
