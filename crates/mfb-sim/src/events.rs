//! Chronological chip event logs: everything that happens on the chip, in
//! time order.
//!
//! Useful for debugging a synthesis result, driving animations, and as a
//! human-readable trace of what the assay physically does. Events carry
//! **realized** times, so baseline postponements show up exactly where
//! they bite.

use mfb_model::prelude::*;
use mfb_route::prelude::Routing;
use mfb_sched::prelude::Schedule;
use std::fmt;

/// One thing happening on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipEvent {
    /// An operation begins executing.
    OpStarted {
        /// The operation.
        op: OpId,
        /// Its component.
        component: ComponentId,
    },
    /// An operation finishes; its output fluid now resides in the
    /// component.
    OpFinished {
        /// The operation.
        op: OpId,
        /// Its component.
        component: ComponentId,
    },
    /// A fluid leaves its source component into the channels.
    Departed {
        /// The transport task.
        task: TaskId,
        /// The fluid (by producing operation).
        fluid: OpId,
        /// Source component.
        src: ComponentId,
    },
    /// A fluid finishes its channel journey and is consumed.
    Consumed {
        /// The transport task.
        task: TaskId,
        /// The fluid.
        fluid: OpId,
        /// Destination component.
        dst: ComponentId,
    },
    /// A component wash begins (flushing the residue of `residue`).
    WashStarted {
        /// The washed component.
        component: ComponentId,
        /// Whose residue is removed.
        residue: OpId,
    },
    /// A component wash completes; the component is clean.
    WashFinished {
        /// The washed component.
        component: ComponentId,
        /// Whose residue was removed.
        residue: OpId,
    },
}

impl fmt::Display for ChipEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipEvent::OpStarted { op, component } => write!(f, "{op} starts on {component}"),
            ChipEvent::OpFinished { op, component } => {
                write!(f, "{op} finishes on {component}")
            }
            ChipEvent::Departed { task, fluid, src } => {
                write!(f, "{task}: out({fluid}) departs {src}")
            }
            ChipEvent::Consumed { task, fluid, dst } => {
                write!(f, "{task}: out({fluid}) consumed at {dst}")
            }
            ChipEvent::WashStarted { component, residue } => {
                write!(f, "wash of {component} begins (residue of {residue})")
            }
            ChipEvent::WashFinished { component, residue } => {
                write!(f, "{component} clean (residue of {residue} flushed)")
            }
        }
    }
}

/// Builds the chronological event log of a solution, under the routing's
/// realized times. Events at equal instants order deterministically
/// (op events before transport events before washes, then by id).
pub fn event_log(schedule: &Schedule, routing: &Routing) -> Vec<(Instant, ChipEvent)> {
    let mut events: Vec<(Instant, u8, u32, ChipEvent)> = Vec::new();
    let realized = &routing.realized;

    for s in schedule.ops() {
        events.push((
            realized.start[s.op.index()],
            0,
            s.op.index() as u32,
            ChipEvent::OpStarted {
                op: s.op,
                component: s.component,
            },
        ));
        events.push((
            realized.end[s.op.index()],
            1,
            s.op.index() as u32,
            ChipEvent::OpFinished {
                op: s.op,
                component: s.component,
            },
        ));
    }
    for t in schedule.transports() {
        // Realized channel windows live on the routed path.
        let (depart, consumed) = match routing.paths.get(t.id.index()) {
            Some(p) if !p.is_empty() => {
                let hull = p.window_hull();
                (hull.start, hull.end)
            }
            _ => (t.depart, t.consumed_at),
        };
        events.push((
            depart,
            2,
            t.id.index() as u32,
            ChipEvent::Departed {
                task: t.id,
                fluid: t.fluid,
                src: t.src,
            },
        ));
        events.push((
            consumed,
            3,
            t.id.index() as u32,
            ChipEvent::Consumed {
                task: t.id,
                fluid: t.fluid,
                dst: t.dst,
            },
        ));
    }
    for (i, w) in schedule.washes().enumerate() {
        events.push((
            w.start,
            4,
            i as u32,
            ChipEvent::WashStarted {
                component: w.component,
                residue: w.residue,
            },
        ));
        events.push((
            w.end,
            5,
            i as u32,
            ChipEvent::WashFinished {
                component: w.component,
                residue: w.residue,
            },
        ));
    }

    events.sort_by_key(|&(t, class, id, _)| (t, class, id));
    events.into_iter().map(|(t, _, _, e)| (t, e)).collect()
}

/// Renders an event log as readable text, one event per line.
pub fn render_event_log(events: &[(Instant, ChipEvent)]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (t, e) in events {
        let _ = writeln!(s, "{:>8.1}s  {}", t.as_secs_f64(), e);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::test_support::solved_instance;

    #[test]
    fn log_covers_every_op_and_transport() {
        let (g, _comps, s, _p, r, _w) = solved_instance();
        let log = event_log(&s, &r);
        let starts = log
            .iter()
            .filter(|(_, e)| matches!(e, ChipEvent::OpStarted { .. }))
            .count();
        let finishes = log
            .iter()
            .filter(|(_, e)| matches!(e, ChipEvent::OpFinished { .. }))
            .count();
        assert_eq!(starts, g.len());
        assert_eq!(finishes, g.len());
        let departs = log
            .iter()
            .filter(|(_, e)| matches!(e, ChipEvent::Departed { .. }))
            .count();
        assert_eq!(departs, s.transports().len());
    }

    #[test]
    fn log_is_chronological() {
        let (_g, _c, s, _p, r, _w) = solved_instance();
        let log = event_log(&s, &r);
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "out of order: {:?} then {:?}", w[0], w[1]);
        }
        // The last event lands at the assay completion instant.
        assert_eq!(log.last().unwrap().0, s.completion_time());
    }

    #[test]
    fn renders_readable_lines() {
        let (_g, _c, s, _p, r, _w) = solved_instance();
        let log = event_log(&s, &r);
        let text = render_event_log(&log);
        assert_eq!(text.lines().count(), log.len());
        assert!(text.contains("starts on"));
        assert!(text.contains("consumed at"));
    }
}
