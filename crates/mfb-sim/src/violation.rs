//! Violations the replay simulator can detect.

use mfb_model::prelude::*;
use std::fmt;

/// One defect found while replaying a physical solution.
///
/// The three `§II-C.2` transportation-conflict classes map to
/// [`CellConflict`](SimViolation::CellConflict) (classes 1 and 2 — two
/// tasks, or a task and a cached fluid, on one cell at once) and
/// [`WashGap`](SimViolation::WashGap) (class 3 — flowing through a channel
/// segment whose previous residue is not yet washed away).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimViolation {
    /// A path has a gap: consecutive cells are not edge-adjacent.
    PathDiscontiguous {
        /// The broken task.
        task: TaskId,
    },
    /// A path crosses a component's interior.
    PathThroughComponent {
        /// The offending task.
        task: TaskId,
        /// The trespassed cell.
        cell: CellPos,
        /// The component occupying it.
        component: ComponentId,
    },
    /// A path does not start at its source component's boundary or end at
    /// its destination's.
    BadEndpoint {
        /// The offending task.
        task: TaskId,
    },
    /// Two different fluids occupy the same cell at overlapping times
    /// (conflict classes 1 and 2).
    CellConflict {
        /// The shared cell.
        cell: CellPos,
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
    },
    /// A fluid entered a cell before the previous residue's wash completed
    /// (conflict class 3).
    WashGap {
        /// The contaminated cell.
        cell: CellPos,
        /// The earlier task whose residue was still present.
        previous: TaskId,
        /// The task that entered too early.
        next: TaskId,
    },
    /// An operation starts before one of its input fluids can exist.
    PrecedenceViolation {
        /// Producing operation.
        parent: OpId,
        /// Consuming operation.
        child: OpId,
    },
    /// Two operations overlap in time on the same component (realized
    /// times).
    ComponentOverlap {
        /// First operation.
        a: OpId,
        /// Second operation.
        b: OpId,
        /// The shared component.
        component: ComponentId,
    },
    /// A transport task's channel occupancy lies outside the lifetime
    /// bounded by its producer's end and its consumer's start.
    WindowOutsideLifetime {
        /// The offending task.
        task: TaskId,
    },
    /// A transport task has no routed path.
    MissingPath {
        /// The unrouted task.
        task: TaskId,
    },
    /// The placement itself is illegal (component overlap or out of
    /// bounds).
    IllegalPlacement,
    /// The solution's parts do not fit the given assay and component set
    /// at all (wrong operation / component / task counts) — typically an
    /// archived solution replayed against the wrong benchmark.
    ShapeMismatch {
        /// What disagrees.
        what: &'static str,
    },
}

impl fmt::Display for SimViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimViolation::PathDiscontiguous { task } => {
                write!(f, "path of {task} is discontiguous")
            }
            SimViolation::PathThroughComponent {
                task,
                cell,
                component,
            } => {
                write!(f, "path of {task} crosses {component} at {cell}")
            }
            SimViolation::BadEndpoint { task } => {
                write!(f, "path of {task} does not connect its endpoints")
            }
            SimViolation::CellConflict { cell, a, b } => {
                write!(f, "{a} and {b} occupy {cell} simultaneously")
            }
            SimViolation::WashGap {
                cell,
                previous,
                next,
            } => {
                write!(
                    f,
                    "{next} enters {cell} before {previous}'s residue is washed"
                )
            }
            SimViolation::PrecedenceViolation { parent, child } => {
                write!(f, "{child} starts before out({parent}) can arrive")
            }
            SimViolation::ComponentOverlap { a, b, component } => {
                write!(f, "{a} and {b} overlap on {component}")
            }
            SimViolation::WindowOutsideLifetime { task } => {
                write!(f, "{task} occupies channels outside its fluid's lifetime")
            }
            SimViolation::MissingPath { task } => write!(f, "{task} has no routed path"),
            SimViolation::IllegalPlacement => write!(f, "placement is illegal"),
            SimViolation::ShapeMismatch { what } => {
                write!(f, "solution does not fit this assay/chip: {what}")
            }
        }
    }
}

impl std::error::Error for SimViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let v = SimViolation::CellConflict {
            cell: CellPos::new(3, 4),
            a: TaskId::new(0),
            b: TaskId::new(1),
        };
        let msg = v.to_string();
        assert!(msg.contains("tk0") && msg.contains("tk1") && msg.contains("(3,4)"));

        let w = SimViolation::WashGap {
            cell: CellPos::new(1, 1),
            previous: TaskId::new(2),
            next: TaskId::new(5),
        };
        assert!(w.to_string().contains("washed"));
    }
}
