//! Control-layer cost estimation for routed DCSA chips.
//!
//! The paper closes with "future work will consider the optimization of
//! control logic \[13\] to reduce the overall complexity of such platform".
//! This crate provides the estimation side of that direction: given a
//! routed flow layer, how much control hardware does it imply?
//!
//! The model follows the standard FBMB control architecture:
//!
//! * every **junction** — a channel cell where three or more channel
//!   directions meet, or a channel cell adjacent to a component port —
//!   needs one microvalve per incident channel direction to steer flows;
//! * executing a transport task opens the valves along its path and closes
//!   them afterwards, so each junction valve on the path contributes **two
//!   switching events**;
//! * with Hamming-style control multiplexing (Wang et al., ASP-DAC'17, the
//!   paper's \[13\]), the number of control pins is lower-bounded by
//!   `ceil(log2(distinct valve states + 1))`, and upper-bounded by one pin
//!   per valve.
//!
//! These figures let design-space studies weigh the flow-layer gains of
//! DCSA against control-layer complexity.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use mfb_model::prelude::*;
use mfb_place::prelude::Placement;
use mfb_route::prelude::Routing;
use std::collections::{BTreeMap, BTreeSet};

/// Microvalves inside one component, by kind, following the canonical MLSI
/// structures (Melin & Quake, Annu. Rev. Biophys. 2007): a rotary mixer
/// carries a three-valve peristaltic pump plus two isolation valves per
/// port; heaters, filters and detectors are passive chambers with two
/// isolation valves.
const COMPONENT_VALVES: [usize; 4] = [
    3 + 2 * 2, // mixer: pump + 2 ports
    2,         // heater
    2,         // filter
    2,         // detector
];

/// The channel-valve topology implied by a routed flow layer: which cells
/// are junctions, which channel directions meet there, and which cells sit
/// on a component's port ring.
///
/// This is the structural half of [`ControlEstimate`], exposed so other
/// analyses (notably `mfb-analyze`'s valve-conflict check) can reason about
/// individual valves — a valve being the gate on one incident edge
/// `(junction, neighbour)` — instead of only aggregate counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValveNetwork {
    /// Channel adjacency: every cell used by some path, with the set of
    /// channel cells reachable in one path step.
    neighbours: BTreeMap<CellPos, BTreeSet<CellPos>>,
    /// Number of component-port directions incident to each used cell
    /// (orthogonal neighbours covered by a component rectangle).
    port_degree: BTreeMap<CellPos, usize>,
    /// Cells that need steering valves (see [`ValveNetwork::is_junction`]).
    junction_cells: BTreeSet<CellPos>,
}

impl ValveNetwork {
    /// Builds the valve network for `routing` on `placement`.
    pub fn build(routing: &Routing, placement: &Placement) -> ValveNetwork {
        let grid = placement.grid();

        // The channel graph: every used cell, with its neighbour set drawn
        // from path adjacencies.
        let mut neighbours: BTreeMap<CellPos, BTreeSet<CellPos>> = BTreeMap::new();
        for path in &routing.paths {
            for pair in path.cells.windows(2) {
                if pair[0] != pair[1] {
                    neighbours.entry(pair[0]).or_default().insert(pair[1]);
                    neighbours.entry(pair[1]).or_default().insert(pair[0]);
                }
            }
            if let Some(&only) = path.cells.first() {
                neighbours.entry(only).or_default();
            }
        }

        // Port adjacency: a channel cell next to a component rectangle has
        // an extra (virtual) direction into the component.
        let port_degree: BTreeMap<CellPos, usize> = neighbours
            .keys()
            .map(|&cell| {
                let ports = cell
                    .neighbours(grid.width, grid.height)
                    .filter(|&nb| placement.rects().iter().any(|r| r.contains(nb)))
                    .count();
                (cell, ports)
            })
            .collect();

        let junction_cells: BTreeSet<CellPos> = neighbours
            .iter()
            .filter(|(cell, nbs)| {
                let ports = port_degree.get(*cell).copied().unwrap_or(0);
                nbs.len() + ports >= 3 || (ports > 0 && !nbs.is_empty())
            })
            .map(|(&cell, _)| cell)
            .collect();

        ValveNetwork {
            neighbours,
            port_degree,
            junction_cells,
        }
    }

    /// `true` when `cell` is a junction: three or more channel directions
    /// meet there, or it is a port-ring cell with channel traffic. Every
    /// incident channel direction of a junction carries one microvalve.
    pub fn is_junction(&self, cell: CellPos) -> bool {
        self.junction_cells.contains(&cell)
    }

    /// All junction cells, in cell order.
    pub fn junctions(&self) -> impl Iterator<Item = CellPos> + '_ {
        self.junction_cells.iter().copied()
    }

    /// The channel cells adjacent to `cell` in the routed channel graph
    /// (empty for cells no path uses).
    pub fn channel_neighbours(&self, cell: CellPos) -> impl Iterator<Item = CellPos> + '_ {
        self.neighbours.get(&cell).into_iter().flatten().copied()
    }

    /// Number of component-port directions incident to `cell`.
    pub fn port_degree(&self, cell: CellPos) -> usize {
        self.port_degree.get(&cell).copied().unwrap_or(0)
    }

    /// Total incident directions of `cell`: channel neighbours plus ports.
    pub fn degree(&self, cell: CellPos) -> usize {
        self.neighbours.get(&cell).map_or(0, BTreeSet::len) + self.port_degree(cell)
    }

    /// Number of junction cells.
    pub fn junction_count(&self) -> usize {
        self.junction_cells.len()
    }

    /// Total channel-network microvalves: one per incident direction per
    /// junction.
    pub fn channel_valve_count(&self) -> usize {
        self.junctions().map(|j| self.degree(j)).sum()
    }
}

/// Estimated control-layer cost of a routed solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlEstimate {
    /// Channel cells that act as junctions (see module docs).
    pub junctions: usize,
    /// Microvalves in the channel network: one per incident channel
    /// direction per junction.
    pub channel_valves: usize,
    /// Microvalves inside components (pump and isolation valves).
    pub component_valves: usize,
    /// Total microvalves on the chip.
    pub valves: usize,
    /// Valve switching events over the whole assay (two per junction valve
    /// traversal).
    pub switching_events: usize,
    /// Lower bound on control pins under ideal multiplexing.
    pub min_control_pins: usize,
    /// Upper bound on control pins (direct drive, one pin per valve).
    pub max_control_pins: usize,
}

impl ControlEstimate {
    /// Estimates the control layer implied by `routing` on `placement`,
    /// counting component-internal valves for `components`.
    pub fn of_chip(
        routing: &Routing,
        placement: &Placement,
        components: &ComponentSet,
    ) -> ControlEstimate {
        let mut est = ControlEstimate::of(routing, placement);
        est.component_valves = components
            .iter()
            .map(|c| COMPONENT_VALVES[c.kind() as usize])
            .sum();
        est.valves += est.component_valves;
        est.max_control_pins = est.valves;
        est.min_control_pins = (usize::BITS - est.valves.leading_zeros()) as usize;
        est
    }

    /// Estimates the channel-network control layer implied by `routing` on
    /// `placement` (component-internal valves excluded; see
    /// [`ControlEstimate::of_chip`]).
    pub fn of(routing: &Routing, placement: &Placement) -> ControlEstimate {
        let network = ValveNetwork::build(routing, placement);
        let junctions = network.junction_count();
        let channel_valves = network.channel_valve_count();

        // Switching: two events per junction cell traversed per task.
        let switching_events = routing
            .paths
            .iter()
            .map(|p| 2 * p.cells.iter().filter(|&&c| network.is_junction(c)).count())
            .sum();

        // ceil(log2(valves + 1)) = bit-width of `valves`.
        let min_control_pins = (usize::BITS - channel_valves.leading_zeros()) as usize;

        ControlEstimate {
            junctions,
            channel_valves,
            component_valves: 0,
            valves: channel_valves,
            switching_events,
            min_control_pins,
            max_control_pins: channel_valves,
        }
    }
}

impl std::fmt::Display for ControlEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} junctions, {} valves ({} channel + {} component), {} switch events, {}..{} control pins",
            self.junctions,
            self.valves,
            self.channel_valves,
            self.component_valves,
            self.switching_events,
            self.min_control_pins,
            self.max_control_pins
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfb_bench_suite::table1_benchmarks;
    use mfb_core::prelude::*;

    fn solved(name: &str) -> (Placement, Routing) {
        let wash = LogLinearWash::paper_calibrated();
        let b = table1_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap();
        let comps = b.components(&ComponentLibrary::default());
        let sol = Synthesizer::paper_dcsa()
            .synthesize(&b.graph, &comps, &wash)
            .unwrap();
        (sol.placement, sol.routing)
    }

    #[test]
    fn estimates_are_internally_consistent() {
        let (p, r) = solved("CPA");
        let est = ControlEstimate::of(&r, &p);
        assert!(est.valves >= est.junctions, "each junction has >= 1 valve");
        assert!(est.min_control_pins <= est.max_control_pins);
        assert!(est.switching_events % 2 == 0, "open/close pairs");
        assert!(est.to_string().contains("valves"));
    }

    #[test]
    fn bigger_assays_need_more_control() {
        let (p1, r1) = solved("PCR");
        let (p2, r2) = solved("Synthetic4");
        let small = ControlEstimate::of(&r1, &p1);
        let large = ControlEstimate::of(&r2, &p2);
        assert!(
            large.valves > small.valves,
            "Synthetic4 ({}) should out-valve PCR ({})",
            large.valves,
            small.valves
        );
    }

    #[test]
    fn empty_routing_means_no_control() {
        let p = Placement::new(GridSpec::square(10), vec![]);
        let r = Routing {
            paths: vec![],
            channel_washes: vec![],
            realized: mfb_route::prelude::RealizedTimes {
                start: vec![],
                end: vec![],
            },
            grid: GridSpec::square(10),
            used_cells: 0,
        };
        let est = ControlEstimate::of(&r, &p);
        assert_eq!(est.valves, 0);
        assert_eq!(est.min_control_pins, 0);
        assert_eq!(est.switching_events, 0);
    }

    #[test]
    fn chip_estimate_adds_component_valves() {
        let (p, r) = solved("PCR");
        let comps = mfb_model::prelude::Allocation::new(3, 0, 0, 0)
            .instantiate(&mfb_model::prelude::ComponentLibrary::default());
        let channel = ControlEstimate::of(&r, &p);
        let chip = ControlEstimate::of_chip(&r, &p, &comps);
        // Three mixers at 7 valves each.
        assert_eq!(chip.component_valves, 21);
        assert_eq!(chip.valves, channel.channel_valves + 21);
        assert!(chip.min_control_pins >= channel.min_control_pins);
        assert!(chip.to_string().contains("component"));
    }

    #[test]
    fn pin_bound_is_logarithmic() {
        // 7 valves -> ceil(log2(8)) = 3 pins.
        let pins = |valves: usize| (usize::BITS - valves.leading_zeros()) as usize;
        assert_eq!(pins(0), 0);
        assert_eq!(pins(1), 1);
        assert_eq!(pins(7), 3);
        assert_eq!(pins(8), 4);
    }
}
